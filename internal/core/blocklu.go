package core

import (
	"errors"
	"fmt"

	"repro/internal/lu"
	"repro/internal/mapreduce"
	"repro/internal/matrix"
	"repro/internal/obs"
)

// Block LU decomposition as a pipeline of MapReduce jobs (Section 4.2 and
// Algorithm 2). Each internal recursion node runs exactly one job whose
// mappers compute L2' and U2 (Equation 6, via triangular solves) and whose
// reducers compute B = A4 - L2'U2 with the block-wrap layout (Section 6.2,
// Figure 5). Leaves are decomposed on the master with Algorithm 1.

// computeLU decomposes the submatrix described by node and returns its
// factor handle. jobs are appended to st's counters as they run. The
// run's context is observed before every leaf decomposition and recursion
// level, so a canceled run stops between jobs rather than mid-pipeline.
func (st *pipelineState) computeLU(node *nodeInput) (*luHandle, error) {
	if err := st.runCtx().Err(); err != nil {
		return nil, fmt.Errorf("core: %s: %w", node.dir, err)
	}
	if node.n <= st.opts.NB {
		return st.masterLU(node)
	}
	h := splitPoint(node.n)
	a1, a2ref, a3ref, a4ref := node.quadrants()

	// Step 1: recurse on A1 (Algorithm 2 line 6).
	h1, err := st.computeLU(a1)
	if err != nil {
		return nil, err
	}

	// Step 2: one MapReduce job computes L2', U2 and B (lines 7-9).
	hd, err := st.runLevelJob(node, h, h1, a2ref, a3ref, a4ref)
	if err != nil {
		return nil, err
	}

	// Step 3: recurse on B (line 10). Its partitioning is metadata only
	// (Section 5.2): bRef slices are never materialized.
	bRef := hd.bRef
	bInput := &nodeInput{dir: node.dir + "/OUT", n: node.n - h, whole: &bRef}
	h2, err := st.computeLU(bInput)
	if err != nil {
		return nil, err
	}

	// Step 4: combine (lines 11-13). With separate files this is pure
	// metadata: the handle records children and band files; P = P1 ⊕ P2.
	out := &luHandle{
		n:  node.n,
		h:  h,
		h1: h1,
		h2: h2,
		l2: hd.l2,
		u2: hd.u2,
		p:  matrix.Augment(h1.p, h2.p),
	}
	if err := writePerm(st.fs, node.dir+"/p.bin", out.p); err != nil {
		return nil, err
	}
	if !st.opts.SeparateFiles {
		// Figure 7's unoptimized comparator: serially combine the factor
		// files on the master after every job.
		return st.combineLevel(node.dir, out)
	}
	return out, nil
}

// masterLU decomposes a leaf submatrix on the master node (Algorithm 2
// lines 2-3) and writes its l/u/p files.
func (st *pipelineState) masterLU(node *nodeInput) (*luHandle, error) {
	//mrlint:allow obsnames -- per-leaf trace spans carry the node directory; bounded by the recursion tree
	op := st.span.Child("master-lu:"+node.dir, obs.KindOp)
	defer op.Finish()
	op.SetAttr("order", int64(node.n))
	ref := node.leafRef()
	a, err := readAll(masterReader(st.fs), ref)
	if err != nil {
		return nil, fmt.Errorf("core: leaf %s: %w", node.dir, err)
	}
	f, err := lu.Decompose(a)
	if err != nil {
		if errors.Is(err, lu.ErrSingular) {
			// The block method pivots only inside diagonal blocks
			// (Section 4.2): a singular leaf does not necessarily mean a
			// singular input. Surface a typed error so callers can fall
			// back to a fully pivoted inverter.
			return nil, fmt.Errorf("core: leaf %s of order %d: %w", node.dir, node.n, ErrSingularBlock)
		}
		return nil, fmt.Errorf("core: leaf %s: %w", node.dir, err)
	}
	st.masterDecompositions++
	return st.writeLeaf(node.dir, f.L(), f.U(), f.P)
}

// writeLeaf stores explicit L and U factors (and P) as single files and
// returns a leaf handle. U is stored transposed under the Section 6.3
// optimization.
func (st *pipelineState) writeLeaf(dir string, l, u *matrix.Dense, p matrix.Perm) (*luHandle, error) {
	n := l.Rows
	hd := &luHandle{n: n, leaf: true, p: p}
	hd.lFile = blockFile{Path: dir + "/l.bin", R0: 0, R1: n, C0: 0, C1: n}
	if err := st.fs.WriteMatrix(hd.lFile.Path, l); err != nil {
		return nil, err
	}
	hd.uFile = blockFile{Path: dir + "/u.bin", R0: 0, R1: n, C0: 0, C1: n, Transposed: st.opts.TransposeU}
	stored := u
	if st.opts.TransposeU {
		stored = u.Transpose()
	}
	if err := st.fs.WriteMatrix(hd.uFile.Path, stored); err != nil {
		return nil, err
	}
	if err := writePerm(st.fs, dir+"/p.bin", p); err != nil {
		return nil, err
	}
	return hd, nil
}

// combineLevel reads the full L and U of a freshly computed level and
// rewrites them as single files — the serial master-side work the
// Section 6.1 optimization eliminates.
func (st *pipelineState) combineLevel(dir string, hd *luHandle) (*luHandle, error) {
	//mrlint:allow obsnames -- per-level trace spans carry the level directory; bounded by the recursion depth
	op := st.span.Child("combine:"+dir, obs.KindOp)
	defer op.Finish()
	rd := masterReader(st.fs)
	l, err := hd.readL(rd)
	if err != nil {
		return nil, err
	}
	u, err := hd.readU(rd)
	if err != nil {
		return nil, err
	}
	st.masterCombines++
	return st.writeLeaf(dir, l, u, hd.p)
}

// levelResult carries what one LU-level job produced.
type levelResult struct {
	l2   matRef
	u2   matRef
	bRef matRef
}

// runLevelJob executes the MapReduce job of one internal node: mappers
// j < m0/2 compute L2' row bands, mappers j >= m0/2 compute U2 column
// bands, and reducer j computes block j of B = A4 - L2'U2 (Figure 5).
func (st *pipelineState) runLevelJob(node *nodeInput, h int, h1 *luHandle, a2ref, a3ref, a4ref matRef) (*levelResult, error) {
	m0 := st.opts.Nodes
	mhalf := m0 / 2
	nbot := node.n - h
	dir := node.dir
	opts := st.opts

	// Band layout is deterministic, so the master can precompute the
	// references the reducers and the next recursion level will read.
	res := &levelResult{
		l2: matRef{Rows: nbot, Cols: h},
		u2: matRef{Rows: h, Cols: nbot},
	}
	for j := 0; j < mhalf; j++ {
		if lo, hi := bandBounds(nbot, mhalf, j); lo != hi {
			res.l2.Blocks = append(res.l2.Blocks, blockFile{
				Path: fmt.Sprintf("%s/L2/L.%d", dir, j), R0: lo, R1: hi, C0: 0, C1: h,
			})
		}
		if lo, hi := bandBounds(nbot, mhalf, j); lo != hi {
			res.u2.Blocks = append(res.u2.Blocks, blockFile{
				Path: fmt.Sprintf("%s/U2/U.%d", dir, j), R0: 0, R1: h, C0: lo, C1: hi,
				Transposed: opts.TransposeU,
			})
		}
	}
	f1, f2 := FactorPair(m0)
	if !opts.BlockWrap {
		f1, f2 = m0, 1
	}
	res.bRef = matRef{Rows: nbot, Cols: nbot}
	for r := 0; r < m0; r++ {
		rg, cg := r/f2, r%f2
		rlo, rhi := bandBounds(nbot, f1, rg)
		clo, chi := bandBounds(nbot, f2, cg)
		if rlo == rhi || clo == chi {
			continue
		}
		res.bRef.Blocks = append(res.bRef.Blocks, blockFile{
			Path: fmt.Sprintf("%s/OUT/A.%d", dir, r), R0: rlo, R1: rhi, C0: clo, C1: chi,
		})
	}

	job := &mapreduce.Job{
		Name:      "lu:" + dir,
		Splits:    mapreduce.ControlSplits(m0),
		NumReduce: m0,
		Priority:  st.opts.Priority,
		Partition: func(key string, n int) int {
			var v int
			fmt.Sscanf(key, "%d", &v)
			return v % n
		},
		Map: func(ctx *mapreduce.TaskContext, split mapreduce.InputSplit, emit mapreduce.Emitter) error {
			j := split.ID
			rd := nodeReader{fs: ctx.FS, node: ctx.Node}
			if j < mhalf {
				if err := computeL2Band(rd, st, dir, j, mhalf, nbot, h1, a3ref); err != nil {
					return err
				}
				if lo, hi := bandBounds(nbot, mhalf, j); hi > lo {
					ctx.IncrCounter("l2.elements", int64(hi-lo)*int64(h))
				}
			} else {
				if err := computeU2Band(rd, st, dir, j-mhalf, mhalf, nbot, h1, a2ref); err != nil {
					return err
				}
				if lo, hi := bandBounds(nbot, mhalf, j-mhalf); hi > lo {
					ctx.IncrCounter("u2.elements", int64(hi-lo)*int64(h))
				}
			}
			emit.Emit(fmt.Sprintf("%d", j), nil)
			return nil
		},
		Reduce: func(ctx *mapreduce.TaskContext, key string, values [][]byte, emit mapreduce.Emitter) error {
			var r int
			if _, err := fmt.Sscanf(key, "%d", &r); err != nil {
				return err
			}
			if err := computeBBlock(nodeReader{fs: ctx.FS, node: ctx.Node}, st, dir, r, f1, f2, nbot, a4ref, res); err != nil {
				return err
			}
			rg, cg := r/f2, r%f2
			rlo, rhi := bandBounds(nbot, f1, rg)
			clo, chi := bandBounds(nbot, f2, cg)
			if rhi > rlo && chi > clo {
				ctx.IncrCounter("b.elements", int64(rhi-rlo)*int64(chi-clo))
			}
			return nil
		},
	}
	job.TraceParent = st.span
	jr, err := st.cluster.RunCtx(st.runCtx(), job)
	if err != nil {
		return nil, err
	}
	st.recordJob(jr)
	return res, nil
}

// computeL2Band computes rows [lo, hi) of L2' from L2' U1 = A3
// (Equation 6, first line — a row-wise substitution against U1).
func computeL2Band(rd nodeReader, st *pipelineState, dir string, j, mhalf, nbot int, h1 *luHandle, a3ref matRef) error {
	lo, hi := bandBounds(nbot, mhalf, j)
	if lo == hi {
		return nil
	}
	a3band, err := readRegion(rd, a3ref, lo, hi, 0, a3ref.Cols)
	if err != nil {
		return fmt.Errorf("core: L2' mapper %d: %w", j, err)
	}
	var band *matrix.Dense
	if st.opts.TransposeU {
		ut, err := h1.readUT(rd)
		if err != nil {
			return err
		}
		band, err = lu.SolveRowsUpperTrans(ut, a3band)
		if err != nil {
			return fmt.Errorf("core: L2' mapper %d: %w", j, err)
		}
	} else {
		u1, err := h1.readU(rd)
		if err != nil {
			return err
		}
		band, err = lu.SolveRowsUpper(u1, a3band)
		if err != nil {
			return fmt.Errorf("core: L2' mapper %d: %w", j, err)
		}
	}
	return st.fs.WriteMatrix(fmt.Sprintf("%s/L2/L.%d", dir, j), band)
}

// computeU2Band computes columns [lo, hi) of U2 from L1 U2 = P1 A2
// (Equation 6, second line — forward substitution with unit L1).
func computeU2Band(rd nodeReader, st *pipelineState, dir string, j, mhalf, nbot int, h1 *luHandle, a2ref matRef) error {
	lo, hi := bandBounds(nbot, mhalf, j)
	if lo == hi {
		return nil
	}
	a2band, err := readRegion(rd, a2ref, 0, a2ref.Rows, lo, hi)
	if err != nil {
		return fmt.Errorf("core: U2 mapper %d: %w", j, err)
	}
	l1, err := h1.readL(rd)
	if err != nil {
		return err
	}
	band, err := lu.ForwardSubstMatrix(l1, h1.p.ApplyRows(a2band), true)
	if err != nil {
		return fmt.Errorf("core: U2 mapper %d: %w", j, err)
	}
	if st.opts.TransposeU {
		band = band.Transpose()
	}
	return st.fs.WriteMatrix(fmt.Sprintf("%s/U2/U.%d", dir, j), band)
}

// computeBBlock computes one block-wrap block of B = A4 - L2'U2
// (Figure 5's reduce side) and writes it to OUT/A.<r>.
func computeBBlock(rd nodeReader, st *pipelineState, dir string, r, f1, f2, nbot int, a4ref matRef, res *levelResult) error {
	rg, cg := r/f2, r%f2
	rlo, rhi := bandBounds(nbot, f1, rg)
	clo, chi := bandBounds(nbot, f2, cg)
	if rlo == rhi || clo == chi {
		return nil
	}
	a4blk, err := readRegion(rd, a4ref, rlo, rhi, clo, chi)
	if err != nil {
		return fmt.Errorf("core: reducer %d A4: %w", r, err)
	}
	l2rows, err := readRegion(rd, res.l2, rlo, rhi, 0, res.l2.Cols)
	if err != nil {
		return fmt.Errorf("core: reducer %d L2': %w", r, err)
	}
	var prod *matrix.Dense
	if st.opts.TransposeU {
		// Read the needed U2 columns in transposed orientation and use the
		// Equation 8 row-dot kernel (Section 6.3).
		u2t, err := readRegionTransposed(rd, res.u2, clo, chi)
		if err != nil {
			return fmt.Errorf("core: reducer %d U2^T: %w", r, err)
		}
		prod, err = matrix.MulTransB(l2rows, u2t)
		if err != nil {
			return err
		}
	} else {
		u2cols, err := readRegion(rd, res.u2, 0, res.u2.Rows, clo, chi)
		if err != nil {
			return fmt.Errorf("core: reducer %d U2: %w", r, err)
		}
		// Unoptimized column-walk kernel (Equation 7).
		prod, err = matrix.MulNaiveColumnOrder(l2rows, u2cols)
		if err != nil {
			return err
		}
	}
	if err := matrix.SubInPlace(a4blk, prod); err != nil {
		return err
	}
	return st.fs.WriteMatrix(fmt.Sprintf("%s/OUT/A.%d", dir, r), a4blk)
}

// readRegionTransposed reads columns [clo, chi) of a U2 reference whose
// files are stored transposed, returning them as rows without ever
// materializing the normal orientation.
func readRegionTransposed(rd fsReader, u2 matRef, clo, chi int) (*matrix.Dense, error) {
	// Build the transposed frame: file covering cols [C0, C1) of U2 holds
	// rows [C0, C1) of U2^T.
	t := matRef{Rows: u2.Cols, Cols: u2.Rows}
	for _, b := range u2.Blocks {
		if !b.Transposed {
			// Mixed orientation should not happen; fall back to the
			// normal path by transposing after read.
			normal, err := readRegion(rd, u2, 0, u2.Rows, clo, chi)
			if err != nil {
				return nil, err
			}
			return normal.Transpose(), nil
		}
		t.Blocks = append(t.Blocks, blockFile{Path: b.Path, R0: b.C0, R1: b.C1, C0: b.R0, C1: b.R1})
	}
	return readRegion(rd, t, clo, chi, 0, t.Cols)
}

// readUT assembles U^T for a handle, used by the transposed solve kernel.
func (hd *luHandle) readUT(rd fsReader) (*matrix.Dense, error) {
	if hd.leaf && hd.uFile.Transposed {
		return rd.readMatrix(hd.uFile.Path)
	}
	u, err := hd.readU(rd)
	if err != nil {
		return nil, err
	}
	return u.Transpose(), nil
}
