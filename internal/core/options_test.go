package core

import (
	"errors"
	"testing"

	"repro/internal/workload"
)

func TestDepth(t *testing.T) {
	cases := []struct{ n, nb, want int }{
		{100, 100, 0},
		{100, 200, 0},
		{101, 100, 1},
		{200, 100, 1},
		{201, 100, 2},
		{400, 100, 2},
		{1 << 20, 1 << 10, 10},
		// Paper values (Table 3, nb = 3200):
		{20480, 3200, 3},
		{32768, 3200, 4},
		{40960, 3200, 4},
		{102400, 3200, 5},
		{16384, 3200, 3},
	}
	for _, c := range cases {
		if got := Depth(c.n, c.nb); got != c.want {
			t.Errorf("Depth(%d, %d) = %d, want %d", c.n, c.nb, got, c.want)
		}
	}
}

func TestPipelineJobsMatchesTable3(t *testing.T) {
	for _, spec := range workload.Table3 {
		if got := PipelineJobs(spec.Order, workload.PaperNB); got != spec.Jobs {
			t.Errorf("%s (n=%d): PipelineJobs = %d, Table 3 says %d", spec.Name, spec.Order, got, spec.Jobs)
		}
	}
}

func TestLUJobs(t *testing.T) {
	for d, want := range []int{0, 1, 3, 7, 15, 31} {
		if got := LUJobs(d); got != want {
			t.Errorf("LUJobs(%d) = %d, want %d", d, got, want)
		}
	}
}

func TestLUJobCountAsymmetricTrees(t *testing.T) {
	// n = 51, nb = 25: A1 has order 26 (one more level), B has order 25
	// (leaf). Exact count is 2 jobs, not the uniform-depth 2^2 - 1 = 3.
	if got := LUJobCount(51, 25); got != 2 {
		t.Fatalf("LUJobCount(51, 25) = %d, want 2", got)
	}
	// Symmetric power-of-two case agrees with the closed form.
	if got := LUJobCount(64, 8); got != LUJobs(Depth(64, 8)) {
		t.Fatalf("LUJobCount(64, 8) = %d, want %d", got, LUJobs(Depth(64, 8)))
	}
	if got := LUJobCount(16, 32); got != 0 {
		t.Fatalf("LUJobCount(16, 32) = %d", got)
	}
}

func TestSeparateFileCount(t *testing.T) {
	// Paper example (Section 6.1): n = 2^15, nb = 2048, m0 = 64 gives
	// d = 4 and N(d) = 496.
	if got := SeparateFileCount(4, 64); got != 496 {
		t.Fatalf("N(4, 64) = %d, want 496", got)
	}
	if got := SeparateFileCount(0, 64); got != 1 {
		t.Fatalf("N(0) = %d, want 1", got)
	}
}

func TestFactorPair(t *testing.T) {
	cases := []struct{ m0, f1, f2 int }{
		{1, 1, 1},
		{2, 2, 1},
		{4, 2, 2},
		{6, 3, 2},
		{8, 4, 2},
		{12, 4, 3},
		{16, 4, 4},
		{64, 8, 8}, // paper's Section 6.2 example
		{7, 7, 1},
		{36, 6, 6},
	}
	for _, c := range cases {
		f1, f2 := FactorPair(c.m0)
		if f1 != c.f1 || f2 != c.f2 {
			t.Errorf("FactorPair(%d) = (%d, %d), want (%d, %d)", c.m0, f1, f2, c.f1, c.f2)
		}
		if f1*f2 != maxIntc(c.m0, 1) {
			t.Errorf("FactorPair(%d): product %d", c.m0, f1*f2)
		}
	}
}

func TestBlockWrapReadVolume(t *testing.T) {
	// Paper's 64-node example: naive 65 n^2, block wrap 16 n^2.
	n := 1000
	if got := NaiveReadVolume(n, 64); got != 65_000_000 {
		t.Fatalf("naive = %d", got)
	}
	if got := BlockWrapReadVolume(n, 64); got != 16_000_000 {
		t.Fatalf("block wrap = %d", got)
	}
	if BlockWrapReadVolume(n, 64) >= NaiveReadVolume(n, 64) {
		t.Fatal("block wrap must read less than naive")
	}
}

func TestOptionsValidate(t *testing.T) {
	o := Options{NB: 0}
	if err := o.Validate(); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("err = %v", err)
	}
	o = Options{NB: 16, Nodes: 5}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if o.Nodes != 6 {
		t.Fatalf("odd Nodes not rounded: %d", o.Nodes)
	}
	if o.Root != "Root" {
		t.Fatalf("Root default = %q", o.Root)
	}
	o = Options{NB: 16, Nodes: 0}
	if err := o.Validate(); err != nil || o.Nodes != 2 {
		t.Fatalf("Nodes floor: %d, %v", o.Nodes, err)
	}
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions(8)
	if !o.SeparateFiles || !o.BlockWrap || !o.TransposeU {
		t.Fatal("optimizations must default on")
	}
	if o.NB != DefaultNB || o.Nodes != 8 {
		t.Fatalf("defaults = %+v", o)
	}
}
