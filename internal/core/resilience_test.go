package core

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/lu"
	"repro/internal/mapreduce"
	"repro/internal/matrix"
	"repro/internal/workload"
)

// TestPipelineCountersAccumulate verifies the Hadoop-style counters the
// level jobs report: across the whole LU phase, the L2', U2 and B element
// counts must each sum to the total off-diagonal block area of the
// recursion tree.
func TestPipelineCountersAccumulate(t *testing.T) {
	n := 64
	opts := DefaultOptions(4)
	opts.NB = 16
	a := workload.Random(n, 1101)
	p, err := NewPipeline(opts)
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := p.Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	// The recursion tree: at each internal node of order m with h = m/2
	// (power-of-two sizes here), L2', U2 and B each cover h*h elements.
	var expect int64
	var walk func(m int)
	walk = func(m int) {
		if m <= opts.NB {
			return
		}
		h := splitPoint(m)
		expect += int64(h) * int64(m-h)
		walk(h)
		walk(m - h)
	}
	walk(n)
	for _, key := range []string{"l2.elements", "u2.elements"} {
		if rep.Counters[key] != expect {
			t.Errorf("%s = %d, want %d", key, rep.Counters[key], expect)
		}
	}
	// B blocks cover (m-h)^2 per level; for power-of-two halving that is
	// the same as h*(m-h).
	if rep.Counters["b.elements"] != expect {
		t.Errorf("b.elements = %d, want %d", rep.Counters["b.elements"], expect)
	}
}

// TestPipelineSurvivesReplicaCorruption corrupts one replica of every
// intermediate file after the LU phase; reads verify checksums and heal
// from healthy replicas, and the inversion is unaffected — HDFS behaviour
// the paper's fault-tolerance story rests on.
func TestPipelineSurvivesReplicaCorruption(t *testing.T) {
	n := 64
	opts := DefaultOptions(4)
	opts.NB = 16
	a := workload.Random(n, 1102)
	fs := dfs.New(opts.Nodes, dfs.DefaultReplication)
	cl := mapreduce.NewCluster(fs, opts.Nodes)
	p, err := NewPipelineOn(opts, fs, cl)
	if err != nil {
		t.Fatal(err)
	}

	// Run the decomposition stages, then corrupt one replica of every
	// factor file before the factors are consumed again.
	perm, l, u, err := p.Decompose(a)
	if err != nil {
		t.Fatal(err)
	}
	pristine := map[string][]byte{}
	corrupted := 0
	for _, path := range fs.List("") {
		if sz, _ := fs.Size(path); sz > 0 {
			data, err := fs.Read(path)
			if err != nil {
				t.Fatal(err)
			}
			pristine[path] = data
			if err := fs.Corrupt(path, 0); err == nil {
				corrupted++
			}
		}
	}
	if corrupted == 0 {
		t.Fatal("nothing corrupted")
	}

	// Every read must detect the bad replica, heal it, and return the
	// pristine bytes.
	for path, want := range pristine {
		got, err := fs.Read(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if string(got) != string(want) {
			t.Fatalf("%s: corrupt data served", path)
		}
	}
	if healed := fs.Stats().CorruptionsHealed; healed != int64(corrupted) {
		t.Fatalf("healed %d of %d corruptions", healed, corrupted)
	}

	// The factors read back after healing still reconstruct PA = LU.
	prod, err := matrix.Mul(l, u)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(prod, perm.ApplyRows(a)); d > 1e-8 {
		t.Fatalf("LU != PA by %g", d)
	}
}

// TestPipelineSurvivesTransientReadFailures injects intermittent DFS read
// errors (a flaky datanode); the engine's task retry must absorb them and
// the inversion still succeed — the I/O side of the paper's fault
// tolerance story.
func TestPipelineSurvivesTransientReadFailures(t *testing.T) {
	n := 64
	opts := DefaultOptions(4)
	opts.NB = 16
	a := workload.Random(n, 1104)
	fs := dfs.New(opts.Nodes, dfs.DefaultReplication)
	cl := mapreduce.NewCluster(fs, opts.Nodes)
	cl.DefaultMaxAttempts = 6
	var mu sync.Mutex
	count := 0
	injected := 0
	fs.InjectReadErrors(func(path string) error {
		// Only fail A2/A3 partition files: those are read exclusively by
		// map tasks, whose attempts the engine retries. (Master-side
		// reads have no retry loop, as in Hadoop, where the job client
		// simply fails.)
		if !strings.Contains(path, "/A2/") && !strings.Contains(path, "/A3/") {
			return nil
		}
		mu.Lock()
		defer mu.Unlock()
		count++
		if count%5 == 0 { // 20% of these reads fail
			injected++
			return errors.New("flaky datanode")
		}
		return nil
	})
	p, err := NewPipelineOn(opts, fs, cl)
	if err != nil {
		t.Fatal(err)
	}
	inv, rep, err := p.Invert(a)
	if err != nil {
		t.Fatalf("pipeline did not absorb transient read failures: %v", err)
	}
	fs.InjectReadErrors(nil)
	mu.Lock()
	inj := injected
	mu.Unlock()
	if inj == 0 {
		t.Fatal("injector never fired")
	}
	if rep.TaskFailures == 0 {
		t.Fatal("failures not surfaced as task retries")
	}
	res, err := matrix.IdentityResidual(a, inv)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-7 {
		t.Fatalf("residual %g", res)
	}
}

// TestPipelineWithSpeculation enables speculative execution cluster-wide;
// duplicated attempts must not corrupt the single-writer file layout or
// the result.
func TestPipelineWithSpeculation(t *testing.T) {
	n := 64
	opts := DefaultOptions(4)
	opts.NB = 16
	a := workload.Random(n, 1103)
	fs := dfs.New(opts.Nodes, dfs.DefaultReplication)
	cl := mapreduce.NewCluster(fs, opts.Nodes)
	cl.Speculative = true
	cl.SpeculativeSlack = time.Millisecond
	cl.SpeculativeRatio = 3
	p, err := NewPipelineOn(opts, fs, cl)
	if err != nil {
		t.Fatal(err)
	}
	inv, _, err := p.Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	want, err := lu.Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(inv, want); d > 1e-7 {
		t.Fatalf("speculative run differs by %g", d)
	}
}
