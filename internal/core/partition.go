package core

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dfs"
	"repro/internal/mapreduce"
	"repro/internal/matrix"
)

// The data-partitioning MapReduce job (Section 5.2, Algorithm 3, Figures 3
// and 4). It is a map-only job: mapper j reads its band of consecutive
// input rows and recursively scatters them into the A1/A2/A3/A4 directory
// tree, down to leaves of order <= nb. Every file is written by exactly
// one mapper (no synchronization on writes) and each mapper emits one
// (path -> coordinates) control pair per file it wrote, from which the
// master reconstructs the partition index.
//
// A4 - L2'U2 submatrices produced later are *not* physically partitioned:
// their partitions exist only as matRef metadata (Section 5.2's "very
// small" index files), which is what nodeInput.child encodes.

// nodeInput describes the input submatrix of one recursion node: either a
// physically partitioned node (parts != nil, from the partition job) or a
// logical slice of previously produced files (whole != nil).
type nodeInput struct {
	dir string
	n   int

	whole *matRef     // logical node (leaves, and every B subtree node)
	parts *partedNode // physically partitioned node on the A1 chain
}

// partedNode holds the quadrant references of a physically partitioned
// node. a1 is the recursively partitioned top-left quadrant.
type partedNode struct {
	a1         *nodeInput
	a2, a3, a4 matRef
}

// quadrants returns the references of A2, A3, A4 and the child input for
// A1, regardless of how the node is backed.
func (ni *nodeInput) quadrants() (a1 *nodeInput, a2, a3, a4 matRef) {
	h := splitPoint(ni.n)
	if ni.parts != nil {
		return ni.parts.a1, ni.parts.a2, ni.parts.a3, ni.parts.a4
	}
	w := *ni.whole
	a1ref := w.slice(0, h, 0, h)
	a1 = &nodeInput{dir: ni.dir + "/A1", n: h, whole: &a1ref}
	return a1, w.slice(0, h, h, ni.n), w.slice(h, ni.n, 0, h), w.slice(h, ni.n, h, ni.n)
}

// leafRef returns the full reference of a leaf node.
func (ni *nodeInput) leafRef() matRef {
	if ni.whole != nil {
		return *ni.whole
	}
	panic("core: physical node used as leaf")
}

// splitPoint returns h, the order of A1 when partitioning an order-n node.
// ceil(n/2) matches Depth's halving so every leaf lands at or below nb.
func splitPoint(n int) int { return (n + 1) / 2 }

// partitionJob builds the map-only partition job for an input matrix
// stored as m0 row-band files under root/input/R.<j>. Map tasks prefer
// the datanodes holding their input band (Hadoop's data-local placement),
// which the engine honors through delay scheduling.
func partitionJob(opts Options, n int, fs *dfs.FS) *mapreduce.Job {
	m0 := opts.Nodes
	return &mapreduce.Job{
		Name:     "partition",
		Splits:   mapreduce.ControlSplits(m0),
		Priority: opts.Priority,
		Prefer: func(task int) []int {
			path := fmt.Sprintf("%s/input/R.%d", opts.Root, task)
			if opts.TextInput {
				path += ".txt"
			}
			reps, err := fs.Replicas(path)
			if err != nil {
				return nil
			}
			return reps
		},
		Map: func(ctx *mapreduce.TaskContext, split mapreduce.InputSplit, emit mapreduce.Emitter) error {
			j := split.ID
			r0, r1 := bandBounds(n, m0, j)
			if r0 == r1 {
				return nil
			}
			rd := nodeReader{fs: ctx.FS, node: ctx.Node}
			band, err := readInputBand(rd, opts, j)
			if err != nil {
				return err
			}
			if band.Rows != r1-r0 || band.Cols != n {
				return fmt.Errorf("core: partition mapper %d: band is %dx%d, want %dx%d", j, band.Rows, band.Cols, r1-r0, n)
			}
			p := &partitioner{ctx: ctx, emit: emit, opts: opts, mapperID: j}
			p.descend(opts.Root, n, band, r0)
			return nil
		},
	}
}

// partitioner carries the state of one partition mapper's recursive
// descent (Algorithm 3).
type partitioner struct {
	ctx      *mapreduce.TaskContext
	emit     mapreduce.Emitter
	opts     Options
	mapperID int
}

// descend scatters the mapper's band (covering global rows
// [bandOff, bandOff+band.Rows) of the order-n node rooted at dir) into the
// node's files. All coordinates emitted are local to the destination
// quadrant's frame.
func (p *partitioner) descend(dir string, n int, band *matrix.Dense, bandOff int) {
	r0, r1 := bandOff, bandOff+band.Rows
	if n <= p.opts.NB {
		// Leaf: save the band rows as one file (Algorithm 3 line 5).
		p.save(fmt.Sprintf("%s/A.%d", dir, p.mapperID), band, r0, r1, 0, n)
		return
	}
	h := splitPoint(n)
	mhalf := p.opts.Nodes / 2
	if r0 < h {
		topHi := minInt(r1, h)
		top := band.Block(0, topHi-r0, 0, band.Cols)
		// Recurse into A1 with the top-left part of the band.
		p.descend(dir+"/A1", h, top.Block(0, top.Rows, 0, h), r0)
		// A2: columns [h, n), split into mhalf column bands so each U2
		// mapper later reads only its own files (Algorithm 3 lines 9-12).
		for cb := 0; cb < mhalf; cb++ {
			clo, chi := bandBounds(n-h, mhalf, cb)
			if clo == chi {
				continue
			}
			piece := top.Block(0, top.Rows, h+clo, h+chi)
			p.save(fmt.Sprintf("%s/A2/A.%d.%d", dir, cb, p.mapperID), piece, r0, topHi, clo, chi)
		}
	}
	if r1 > h {
		botLo := maxIntc(r0, h)
		bot := band.Block(botLo-r0, band.Rows, 0, band.Cols)
		// A3: one row-band file per mapper (Algorithm 3 lines 14-18).
		p.save(fmt.Sprintf("%s/A3/A.%d", dir, p.mapperID), bot.Block(0, bot.Rows, 0, h), botLo-h, r1-h, 0, h)
		// A4: split into f2 column groups for the block-wrap reducers
		// (Algorithm 3 lines 19-25).
		_, f2 := FactorPair(p.opts.Nodes)
		if !p.opts.BlockWrap {
			f2 = 1 // naive layout: single column group
		}
		for cg := 0; cg < f2; cg++ {
			clo, chi := bandBounds(n-h, f2, cg)
			if clo == chi {
				continue
			}
			piece := bot.Block(0, bot.Rows, h+clo, h+chi)
			p.save(fmt.Sprintf("%s/A4/A.%d.%d", dir, p.mapperID, cg), piece, botLo-h, r1-h, clo, chi)
		}
	}
}

// save writes one partition file and emits its index entry.
func (p *partitioner) save(path string, m *matrix.Dense, r0, r1, c0, c1 int) {
	if m.Rows == 0 || m.Cols == 0 {
		return
	}
	if err := p.ctx.FS.WriteMatrix(path, m); err != nil {
		panic(err) // converted to a task failure by the engine
	}
	p.emit.Emit(path, []byte(fmt.Sprintf("%d %d %d %d", r0, r1, c0, c1)))
}

// buildInputTree converts the partition job's (path -> coords) output into
// the nodeInput tree for the A1 chain rooted at opts.Root.
func buildInputTree(opts Options, n int, kvs []mapreduce.KV) (*nodeInput, error) {
	// Group block files by their directory.
	groups := make(map[string][]blockFile)
	for _, kv := range kvs {
		var b blockFile
		b.Path = kv.Key
		if _, err := fmt.Sscanf(string(kv.Value), "%d %d %d %d", &b.R0, &b.R1, &b.C0, &b.C1); err != nil {
			return nil, fmt.Errorf("core: bad partition index entry %q=%q: %v", kv.Key, kv.Value, err)
		}
		dir := kv.Key[:strings.LastIndex(kv.Key, "/")]
		groups[dir] = append(groups[dir], b)
	}
	for dir := range groups {
		sortBlocks(groups[dir])
	}
	return buildNode(opts, opts.Root, n, groups)
}

func buildNode(opts Options, dir string, n int, groups map[string][]blockFile) (*nodeInput, error) {
	if n <= opts.NB {
		blocks, ok := groups[dir]
		if !ok {
			return nil, fmt.Errorf("core: no partition files for leaf %s", dir)
		}
		ref := matRef{Rows: n, Cols: n, Blocks: blocks}
		return &nodeInput{dir: dir, n: n, whole: &ref}, nil
	}
	h := splitPoint(n)
	a1, err := buildNode(opts, dir+"/A1", h, groups)
	if err != nil {
		return nil, err
	}
	pn := &partedNode{
		a1: a1,
		a2: matRef{Rows: h, Cols: n - h, Blocks: groups[dir+"/A2"]},
		a3: matRef{Rows: n - h, Cols: h, Blocks: groups[dir+"/A3"]},
		a4: matRef{Rows: n - h, Cols: n - h, Blocks: groups[dir+"/A4"]},
	}
	for name, ref := range map[string]matRef{"A2": pn.a2, "A3": pn.a3, "A4": pn.a4} {
		if len(ref.Blocks) == 0 {
			return nil, fmt.Errorf("core: no partition files for %s/%s", dir, name)
		}
	}
	return &nodeInput{dir: dir, n: n, parts: pn}, nil
}

func sortBlocks(blocks []blockFile) {
	sort.Slice(blocks, func(i, j int) bool {
		if blocks[i].R0 != blocks[j].R0 {
			return blocks[i].R0 < blocks[j].R0
		}
		if blocks[i].C0 != blocks[j].C0 {
			return blocks[i].C0 < blocks[j].C0
		}
		return blocks[i].Path < blocks[j].Path
	})
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxIntc(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// writeInputBands stores the input matrix as m0 row-band files under
// root/input/, the layout HDFS gives a large file whose blocks are
// distributed across datanodes. With opts.TextInput the bands use the
// paper's text format ("a.txt"), costing ~2.5x the bytes.
func writeInputBands(fs *dfs.FS, opts Options, a *matrix.Dense, m0 int) error {
	for j := 0; j < m0; j++ {
		r0, r1 := bandBounds(a.Rows, m0, j)
		if r0 == r1 {
			continue
		}
		path := fmt.Sprintf("%s/input/R.%d", opts.Root, j)
		band := a.Block(r0, r1, 0, a.Cols)
		if opts.TextInput {
			if err := fs.WriteMatrixText(path+".txt", band); err != nil {
				return err
			}
			continue
		}
		if err := fs.WriteMatrix(path, band); err != nil {
			return err
		}
	}
	return nil
}

// readInputBand loads one input band in the configured format.
func readInputBand(rd nodeReader, opts Options, j int) (*matrix.Dense, error) {
	path := fmt.Sprintf("%s/input/R.%d", opts.Root, j)
	if opts.TextInput {
		data, err := rd.read(path + ".txt")
		if err != nil {
			return nil, err
		}
		return matrix.ReadText(bytes.NewReader(data))
	}
	return rd.readMatrix(path)
}

// controlFilePath returns the Section 5.1 control file path for worker j.
func controlFilePath(root string, j int) string {
	return root + "/MapInput/A." + strconv.Itoa(j)
}
