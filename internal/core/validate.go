package core

import (
	"errors"
	"fmt"

	"repro/internal/matrix"
)

// Typed input-validation sentinels. The facade and the serving layer both
// funnel inputs through ValidateInput so a malformed request is rejected
// with a matchable error (HTTP 400 in matserve) instead of surfacing as an
// opaque pipeline failure.
var (
	// ErrNilMatrix reports a nil input matrix.
	ErrNilMatrix = errors.New("core: nil input matrix")
	// ErrEmptyMatrix reports a 0x0 (or zero-row/zero-column) input.
	ErrEmptyMatrix = errors.New("core: empty input matrix")
	// ErrNotSquare reports a rectangular input where a square one is
	// required.
	ErrNotSquare = errors.New("core: input matrix is not square")
)

// ValidateInput checks that a is a usable inversion input: non-nil,
// non-empty, and square. It returns one of the sentinel errors above
// (wrapped with the offending shape where applicable).
func ValidateInput(a *matrix.Dense) error {
	if a == nil {
		return ErrNilMatrix
	}
	if a.Rows == 0 || a.Cols == 0 {
		return fmt.Errorf("%dx%d: %w", a.Rows, a.Cols, ErrEmptyMatrix)
	}
	if !a.IsSquare() {
		return fmt.Errorf("%dx%d: %w", a.Rows, a.Cols, ErrNotSquare)
	}
	return nil
}
