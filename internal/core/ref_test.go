package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/dfs"
	"repro/internal/matrix"
	"repro/internal/workload"
)

// storeGrid writes m as a g x g grid of block files and returns the ref.
func storeGrid(t *testing.T, fs *dfs.FS, m *matrix.Dense, g int, transposed bool) matRef {
	t.Helper()
	ref := matRef{Rows: m.Rows, Cols: m.Cols}
	for i := 0; i < g; i++ {
		r0, r1 := bandBounds(m.Rows, g, i)
		for j := 0; j < g; j++ {
			c0, c1 := bandBounds(m.Cols, g, j)
			if r0 == r1 || c0 == c1 {
				continue
			}
			blk := m.Block(r0, r1, c0, c1)
			if transposed {
				blk = blk.Transpose()
			}
			path := fmt.Sprintf("grid/%d.%d", i, j)
			if err := fs.WriteMatrix(path, blk); err != nil {
				t.Fatal(err)
			}
			ref.Blocks = append(ref.Blocks, blockFile{Path: path, R0: r0, R1: r1, C0: c0, C1: c1, Transposed: transposed})
		}
	}
	return ref
}

func TestReadRegionAssemblesExactly(t *testing.T) {
	fs := dfs.New(4, 1)
	m := workload.Random(23, 71)
	ref := storeGrid(t, fs, m, 4, false)
	rd := masterReader(fs)

	full, err := readAll(rd, ref)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(full, m, 0) {
		t.Fatal("full region differs")
	}

	// Arbitrary interior region crossing block boundaries.
	got, err := readRegion(rd, ref, 3, 17, 5, 22)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(got, m.Block(3, 17, 5, 22), 0) {
		t.Fatal("interior region differs")
	}
}

func TestReadRegionTransposedFiles(t *testing.T) {
	fs := dfs.New(2, 1)
	m := workload.Random(15, 72)
	ref := storeGrid(t, fs, m, 3, true)
	got, err := readRegion(masterReader(fs), ref, 2, 14, 1, 13)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(got, m.Block(2, 14, 1, 13), 0) {
		t.Fatal("transposed-file region differs")
	}
}

func TestReadRegionMissingCoverage(t *testing.T) {
	fs := dfs.New(1, 1)
	m := workload.Random(8, 73)
	ref := storeGrid(t, fs, m, 2, false)
	// Drop one block from the index.
	ref.Blocks = ref.Blocks[:len(ref.Blocks)-1]
	if _, err := readAll(masterReader(fs), ref); err == nil {
		t.Fatal("incomplete coverage accepted")
	}
}

func TestReadRegionMissingFile(t *testing.T) {
	ref := matRef{Rows: 2, Cols: 2, Blocks: []blockFile{{Path: "nope", R0: 0, R1: 2, C0: 0, C1: 2}}}
	fs := dfs.New(1, 1)
	if _, err := readAll(masterReader(fs), ref); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadRegionShapeMismatch(t *testing.T) {
	fs := dfs.New(1, 1)
	if err := fs.WriteMatrix("wrong", matrix.New(3, 3)); err != nil {
		t.Fatal(err)
	}
	ref := matRef{Rows: 2, Cols: 2, Blocks: []blockFile{{Path: "wrong", R0: 0, R1: 2, C0: 0, C1: 2}}}
	if _, err := readAll(masterReader(fs), ref); err == nil {
		t.Fatal("stored/indexed shape mismatch accepted")
	}
}

func TestSliceMetadataOnly(t *testing.T) {
	ref := matRef{Rows: 10, Cols: 10, Blocks: []blockFile{
		{Path: "a", R0: 0, R1: 5, C0: 0, C1: 10},
		{Path: "b", R0: 5, R1: 10, C0: 0, C1: 10},
	}}
	s := ref.slice(2, 7, 3, 9)
	if s.Rows != 5 || s.Cols != 6 {
		t.Fatalf("slice dims %dx%d", s.Rows, s.Cols)
	}
	if len(s.Blocks) != 2 {
		t.Fatalf("blocks = %d", len(s.Blocks))
	}
	// Slicing entirely inside the first block must drop the second.
	s2 := ref.slice(0, 4, 0, 10)
	if len(s2.Blocks) != 1 || s2.Blocks[0].Path != "a" {
		t.Fatalf("slice kept %v", s2.Blocks)
	}
}

func TestSliceOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	matRef{Rows: 4, Cols: 4}.slice(0, 5, 0, 4)
}

func TestSliceComposition(t *testing.T) {
	fs := dfs.New(2, 1)
	m := workload.Random(20, 74)
	ref := storeGrid(t, fs, m, 4, false)
	// slice of slice == direct slice
	s1 := ref.slice(2, 18, 1, 19).slice(3, 10, 4, 12)
	got, err := readAll(masterReader(fs), s1)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(got, m.Block(5, 12, 5, 13), 0) {
		t.Fatal("composed slice differs")
	}
}

func TestBandBounds(t *testing.T) {
	// Bands must partition [0, n) with sizes differing by at most 1.
	f := func(nRaw, mRaw uint8) bool {
		n := int(nRaw)%100 + 1
		m := int(mRaw)%10 + 1
		prev := 0
		minSz, maxSz := n, 0
		for i := 0; i < m; i++ {
			lo, hi := bandBounds(n, m, i)
			if lo != prev || hi < lo {
				return false
			}
			if sz := hi - lo; sz < minSz {
				minSz = sz
			} else if sz > maxSz {
				maxSz = sz
			}
			if hi-lo > maxSz {
				maxSz = hi - lo
			}
			prev = hi
		}
		return prev == n && maxSz-minSz <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
