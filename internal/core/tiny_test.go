package core

import (
	"testing"

	"repro/internal/matrix"
	"repro/internal/workload"
)

func TestTinyMatrixManyNodes(t *testing.T) {
	// More nodes than rows: empty bands, empty grid cells, interleaved
	// index classes with holes — every degenerate path at once.
	for _, n := range []int{1, 2, 3, 5} {
		a := workload.DiagonallyDominant(n, int64(n))
		opts := DefaultOptions(12)
		opts.NB = 2
		p, err := NewPipeline(opts)
		if err != nil {
			t.Fatal(err)
		}
		inv, _, err := p.Invert(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		res, err := matrix.IdentityResidual(a, inv)
		if err != nil {
			t.Fatal(err)
		}
		if res > 1e-9 {
			t.Fatalf("n=%d: residual %g", n, res)
		}
	}
}
