package core

import (
	"fmt"

	"repro/internal/matrix"
)

// luHandle describes where the factors of one (sub)decomposition live in
// the distributed file system. It is the master-side bookkeeping the paper
// keeps in small index files: factor data itself stays distributed across
// the N(d) separate files of Section 6.1 and is only assembled when a task
// reads it.
//
// A leaf handle points at the single l/u/p files written after a
// master-node decomposition (Algorithm 1). An internal handle points at
// its two child handles plus the L2' and U2 band files produced by the
// node's MapReduce job; following Section 5.3, L2 = P2 L2' is never
// materialized — the permutation is applied as the factor is read.
type luHandle struct {
	n    int
	leaf bool

	// Leaf storage.
	lFile, uFile blockFile

	// Internal node storage.
	h  int // split point: A1 is h x h
	h1 *luHandle
	h2 *luHandle
	l2 matRef // (n-h) x h frame, unpermuted L2' bands
	u2 matRef // h x (n-h) frame, U2 bands (Transposed flags per file)

	// p is this (sub)matrix's combined row permutation.
	p matrix.Perm
}

// fileCount returns the number of files storing one triangular factor
// under this handle — the quantity N(d) of Section 6.1.
func (hd *luHandle) fileCount() int {
	if hd.leaf {
		return 1
	}
	return hd.h1.fileCount() + hd.h2.fileCount() + len(hd.l2.Blocks)
}

// readL assembles the full unit lower triangular factor L. For internal
// nodes it recursively assembles L1 and L3 and permutes L2' by P2 on the
// fly ("L2 is constructed only as it is read from HDFS", Section 5.3).
func (hd *luHandle) readL(rd fsReader) (*matrix.Dense, error) {
	if hd.leaf {
		m, err := rd.readMatrix(hd.lFile.Path)
		if err != nil {
			return nil, fmt.Errorf("core: readL: %w", err)
		}
		return m, nil
	}
	l1, err := hd.h1.readL(rd)
	if err != nil {
		return nil, err
	}
	l2p, err := readAll(rd, hd.l2)
	if err != nil {
		return nil, fmt.Errorf("core: readL L2': %w", err)
	}
	l3, err := hd.h2.readL(rd)
	if err != nil {
		return nil, err
	}
	out := matrix.New(hd.n, hd.n)
	out.SetBlock(0, 0, l1)
	out.SetBlock(hd.h, 0, hd.h2.p.ApplyRows(l2p))
	out.SetBlock(hd.h, hd.h, l3)
	return out, nil
}

// readU assembles the full upper triangular factor U in normal
// orientation (transposed storage is undone during the read).
func (hd *luHandle) readU(rd fsReader) (*matrix.Dense, error) {
	if hd.leaf {
		m, err := rd.readMatrix(hd.uFile.Path)
		if err != nil {
			return nil, fmt.Errorf("core: readU: %w", err)
		}
		if hd.uFile.Transposed {
			m = m.Transpose()
		}
		return m, nil
	}
	u1, err := hd.h1.readU(rd)
	if err != nil {
		return nil, err
	}
	u2, err := readAll(rd, hd.u2)
	if err != nil {
		return nil, fmt.Errorf("core: readU U2: %w", err)
	}
	u3, err := hd.h2.readU(rd)
	if err != nil {
		return nil, err
	}
	out := matrix.New(hd.n, hd.n)
	out.SetBlock(0, 0, u1)
	out.SetBlock(0, hd.h, u2)
	out.SetBlock(hd.h, hd.h, u3)
	return out, nil
}
