package core

import (
	"fmt"

	"repro/internal/mapreduce"
	"repro/internal/matrix"
	"repro/internal/obs"
)

// Standalone MapReduce jobs built from the pipeline's machinery:
//
//   - Multiply exposes the Section 6.2 block-wrap matrix multiplication
//     as its own job (the paper's reducers perform exactly this product
//     for B = A4 - L2'U2 and for U^-1 L^-1);
//   - Solve runs the decomposition stages once and then solves A X = B by
//     triangular substitution in a map-only job — the Section 1 linear
//     system application without ever forming A^-1 (2n^2 work per right
//     hand side instead of the n^3 inversion).

// Multiply computes C = A * B with one MapReduce job. A map-only prologue
// inside the job's mappers stores A as f1 row bands and B as f2
// transposed column bands; reducer r computes block (r/f2, r%f2) of C by
// the block-wrap rule, reading n^2 (1/f1 + 1/f2) elements instead of the
// naive (1 + 1/m0) n^2 (Section 6.2).
func (p *Pipeline) Multiply(a, b *matrix.Dense) (*matrix.Dense, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("core: Multiply: %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	p.attachObs()
	span := p.Tracer.StartSpan("pipeline.multiply", obs.KindPipeline)
	defer span.Finish()
	m0 := p.Opts.Nodes
	f1, f2 := FactorPair(m0)
	if !p.Opts.BlockWrap {
		f1, f2 = m0, 1
	}
	root := p.Opts.Root + "/MUL"
	p.FS.DeleteTree(root)

	job := &mapreduce.Job{
		Name:      "multiply",
		Splits:    mapreduce.ControlSplits(m0),
		NumReduce: m0,
		Priority:  p.Opts.Priority,
		Partition: func(key string, n int) int {
			var v int
			fmt.Sscanf(key, "%d", &v)
			return v % n
		},
		Map: func(ctx *mapreduce.TaskContext, split mapreduce.InputSplit, emit mapreduce.Emitter) error {
			j := split.ID
			// Mapper j stores row band j of A (j < f1) and transposed
			// column band j of B (j < f2) — the Section 6.3 orientation
			// so the reducers' inner products walk rows. With f1*f2 = m0
			// every band has a writer and no file has two.
			if j < f1 {
				lo, hi := bandBounds(a.Rows, f1, j)
				if lo != hi {
					if err := ctx.FS.WriteMatrix(fmt.Sprintf("%s/A.%d", root, j), a.Block(lo, hi, 0, a.Cols)); err != nil {
						return err
					}
				}
			}
			if j < f2 {
				lo, hi := bandBounds(b.Cols, f2, j)
				if lo != hi {
					if err := ctx.FS.WriteMatrix(fmt.Sprintf("%s/BT.%d", root, j), b.Block(0, b.Rows, lo, hi).Transpose()); err != nil {
						return err
					}
				}
			}
			emit.Emit(fmt.Sprintf("%d", j), nil)
			return nil
		},
		Reduce: func(ctx *mapreduce.TaskContext, key string, values [][]byte, emit mapreduce.Emitter) error {
			var r int
			if _, err := fmt.Sscanf(key, "%d", &r); err != nil {
				return err
			}
			rg, cg := r/f2, r%f2
			rlo, rhi := bandBounds(a.Rows, f1, rg)
			clo, chi := bandBounds(b.Cols, f2, cg)
			if rlo == rhi || clo == chi {
				return nil
			}
			rd := nodeReader{fs: ctx.FS, node: ctx.Node}
			aband, err := rd.readMatrix(fmt.Sprintf("%s/A.%d", root, rg))
			if err != nil {
				return err
			}
			btband, err := rd.readMatrix(fmt.Sprintf("%s/BT.%d", root, cg))
			if err != nil {
				return err
			}
			blk, err := matrix.MulTransB(aband, btband)
			if err != nil {
				return err
			}
			ctx.IncrCounter("mul.elements", int64(blk.Rows)*int64(blk.Cols))
			return ctx.FS.WriteMatrix(fmt.Sprintf("%s/C.%d", root, r), blk)
		},
	}
	job.TraceParent = span
	if _, err := p.Cluster.Run(job); err != nil {
		return nil, err
	}

	out := matrix.New(a.Rows, b.Cols)
	rd := masterReader(p.FS)
	for r := 0; r < m0; r++ {
		rg, cg := r/f2, r%f2
		rlo, rhi := bandBounds(a.Rows, f1, rg)
		clo, chi := bandBounds(b.Cols, f2, cg)
		if rlo == rhi || clo == chi {
			continue
		}
		blk, err := rd.readMatrix(fmt.Sprintf("%s/C.%d", root, r))
		if err != nil {
			return nil, err
		}
		out.SetBlock(rlo, clo, blk)
	}
	return out, nil
}

// Solve computes X with A X = B through the decomposition pipeline: the
// partition and block-LU jobs run once, then a map-only job forward- and
// back-substitutes disjoint bands of B's columns against the factor files.
func (p *Pipeline) Solve(a, b *matrix.Dense) (*matrix.Dense, error) {
	if !a.IsSquare() || a.Rows != b.Rows {
		return nil, fmt.Errorf("core: Solve: A is %dx%d, B is %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	p.attachObs()
	st := &pipelineState{opts: p.Opts, fs: p.FS, cluster: p.Cluster}
	st.span = p.Tracer.StartSpan("pipeline.solve", obs.KindPipeline)
	defer st.span.Finish()
	n := a.Rows
	if err := writeInputBands(p.FS, p.Opts, a, p.Opts.Nodes); err != nil {
		return nil, err
	}
	pjob := partitionJob(p.Opts, n, p.FS)
	pjob.TraceParent = st.span
	pj, err := p.Cluster.Run(pjob)
	if err != nil {
		return nil, err
	}
	st.recordJob(pj)
	tree, err := buildInputTree(p.Opts, n, pj.Output)
	if err != nil {
		return nil, err
	}
	hd, err := st.computeLU(tree)
	if err != nil {
		return nil, err
	}

	// Store B as column bands so each solver mapper reads only its own.
	m0 := p.Opts.Nodes
	root := p.Opts.Root + "/SOLVE"
	p.FS.DeleteTree(root)
	for j := 0; j < m0; j++ {
		lo, hi := bandBounds(b.Cols, m0, j)
		if lo == hi {
			continue
		}
		if err := p.FS.WriteMatrix(fmt.Sprintf("%s/B.%d", root, j), b.Block(0, n, lo, hi)); err != nil {
			return nil, err
		}
	}
	perm := hd.p

	job := &mapreduce.Job{
		Name:     "solve",
		Splits:   mapreduce.ControlSplits(m0),
		Priority: p.Opts.Priority,
		Map: func(ctx *mapreduce.TaskContext, split mapreduce.InputSplit, emit mapreduce.Emitter) error {
			j := split.ID
			lo, hi := bandBounds(b.Cols, m0, j)
			if lo == hi {
				return nil
			}
			rd := nodeReader{fs: ctx.FS, node: ctx.Node}
			bband, err := rd.readMatrix(fmt.Sprintf("%s/B.%d", root, j))
			if err != nil {
				return err
			}
			l, err := hd.readL(rd)
			if err != nil {
				return err
			}
			u, err := hd.readU(rd)
			if err != nil {
				return err
			}
			// Forward: L Y = P B; backward: U X = Y (column-wise).
			x := perm.ApplyRows(bband)
			for c := 0; c < x.Cols; c++ {
				for i := 0; i < n; i++ {
					s := x.At(i, c)
					for t := 0; t < i; t++ {
						s -= l.At(i, t) * x.At(t, c)
					}
					x.Set(i, c, s)
				}
				for i := n - 1; i >= 0; i-- {
					s := x.At(i, c)
					for t := i + 1; t < n; t++ {
						s -= u.At(i, t) * x.At(t, c)
					}
					x.Set(i, c, s/u.At(i, i))
				}
			}
			ctx.IncrCounter("solve.columns", int64(hi-lo))
			return ctx.FS.WriteMatrix(fmt.Sprintf("%s/X.%d", root, j), x)
		},
	}
	job.TraceParent = st.span
	jr, err := p.Cluster.Run(job)
	if err != nil {
		return nil, err
	}
	st.recordJob(jr)

	out := matrix.New(n, b.Cols)
	rd := masterReader(p.FS)
	for j := 0; j < m0; j++ {
		lo, hi := bandBounds(b.Cols, m0, j)
		if lo == hi {
			continue
		}
		xband, err := rd.readMatrix(fmt.Sprintf("%s/X.%d", root, j))
		if err != nil {
			return nil, err
		}
		out.SetBlock(0, lo, xband)
	}
	return out, nil
}
