package core

import (
	"fmt"

	"repro/internal/mapreduce"
	"repro/internal/matrix"
	"repro/internal/obs"
)

// Standalone MapReduce jobs built from the pipeline's machinery:
//
//   - Multiply exposes the Section 6.2 block-wrap matrix multiplication
//     as its own job (the paper's reducers perform exactly this product
//     for B = A4 - L2'U2 and for U^-1 L^-1);
//   - Solve runs the decomposition stages once and then solves A X = B by
//     triangular substitution in a map-only job — the Section 1 linear
//     system application without ever forming A^-1 (2n^2 work per right
//     hand side instead of the n^3 inversion).

// Multiply computes C = A * B with the strategy selected by
// Opts.Multiply. The default single-round strategy runs one MapReduce
// job: a map-only prologue stores A as g1 row bands and B as g2
// transposed column bands, and reducer r computes block (r/g2, r%g2) of
// C by the block-wrap rule, reading n^2 (1/g1 + 1/g2) elements instead
// of the naive (1 + 1/m0) n^2 (Section 6.2). The multi-round strategies
// (see MultiplyStrategy) trade extra rounds for less shuffle traffic or
// less per-reducer memory; MultiplyWithReport exposes the measured
// transfer accounting the CI gate compares.
func (p *Pipeline) Multiply(a, b *matrix.Dense) (*matrix.Dense, error) {
	out, _, err := p.MultiplyWithReport(a, b)
	return out, err
}

// MultiplyWithReport computes C = A * B like Multiply and also returns
// the per-strategy execution report: jobs launched, shuffled pairs, and
// the DFS byte accounting (in particular TransferredBytes, the
// cross-node traffic the multi-round strategies exist to shrink).
func (p *Pipeline) MultiplyWithReport(a, b *matrix.Dense) (*matrix.Dense, *MultiplyReport, error) {
	if a.Cols != b.Rows {
		return nil, nil, fmt.Errorf("core: Multiply: %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	p.attachObs()
	pl := planMultiply(p.Opts, a.Rows, a.Cols, b.Cols)
	span := p.Tracer.StartSpan("pipeline.multiply", obs.KindPipeline)
	span.SetLabel("multiply.strategy", string(pl.strategy))
	span.SetAttr("multiply.rho", int64(pl.rho))
	defer span.Finish()

	geom := mulGeom{
		plan: pl,
		m0:   p.Opts.Nodes,
		rows: a.Rows, inner: a.Cols, cols: b.Cols,
		root:    p.Opts.Root + "/MUL",
		durable: p.Cluster.Faults != nil,
	}
	p.FS.DeleteTree(geom.root)

	rep := &MultiplyReport{Strategy: pl.strategy, Rho: pl.rho, Grid: [2]int{pl.g1, pl.g2}}
	run := func(job *mapreduce.Job) error {
		job.Priority = p.Opts.Priority
		job.TraceParent = span
		jr, err := p.Cluster.Run(job)
		if err != nil {
			return err
		}
		rep.absorb(jr)
		return nil
	}
	finish := func(ctx *mapreduce.TaskContext, i, j int, blk *matrix.Dense) error {
		ctx.IncrCounter("mul.elements", int64(blk.Rows)*int64(blk.Cols))
		return ctx.FS.WriteMatrix(geom.outPath(i, j), blk)
	}
	readA, readBT := filePieceReaders(geom)
	names := mulNames{first: "multiply", sum: "multiply-sum", round: "multiply-round"}
	if err := runMulRounds(geom, names, run, inMemoryPieces(a, b, geom), readA, readBT, finish); err != nil {
		return nil, nil, err
	}

	out := matrix.New(a.Rows, b.Cols)
	rd := masterReader(p.FS)
	for i := 0; i < pl.g1; i++ {
		rlo, rhi := geom.rowBand(i)
		if rlo == rhi {
			continue
		}
		for j := 0; j < pl.g2; j++ {
			clo, chi := geom.colBand(j)
			if clo == chi {
				continue
			}
			blk, err := rd.readMatrix(geom.outPath(i, j))
			if err != nil {
				return nil, nil, err
			}
			out.SetBlock(rlo, clo, blk)
		}
	}
	span.SetAttr("multiply.bytes_transferred", rep.TransferredBytes)
	span.SetAttr("multiply.jobs", int64(rep.Jobs))
	if p.Metrics != nil {
		p.Metrics.Counter("multiply.jobs").Add(int64(rep.Jobs))
		p.Metrics.Counter("multiply.bytes_transferred").Add(rep.TransferredBytes)
		switch pl.strategy {
		case MultiplyReplicated:
			p.Metrics.Counter("multiply.replicated").Add(1)
		case MultiplySpaceRound:
			p.Metrics.Counter("multiply.space_round").Add(1)
		default:
			p.Metrics.Counter("multiply.single_round").Add(1)
		}
	}
	return out, rep, nil
}

// Solve computes X with A X = B through the decomposition pipeline: the
// partition and block-LU jobs run once, then a map-only job forward- and
// back-substitutes disjoint bands of B's columns against the factor files.
func (p *Pipeline) Solve(a, b *matrix.Dense) (*matrix.Dense, error) {
	if !a.IsSquare() || a.Rows != b.Rows {
		return nil, fmt.Errorf("core: Solve: A is %dx%d, B is %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	p.attachObs()
	st := &pipelineState{opts: p.Opts, fs: p.FS, cluster: p.Cluster}
	st.span = p.Tracer.StartSpan("pipeline.solve", obs.KindPipeline)
	defer st.span.Finish()
	n := a.Rows
	if err := writeInputBands(p.FS, p.Opts, a, p.Opts.Nodes); err != nil {
		return nil, err
	}
	pjob := partitionJob(p.Opts, n, p.FS)
	pjob.TraceParent = st.span
	pj, err := p.Cluster.Run(pjob)
	if err != nil {
		return nil, err
	}
	st.recordJob(pj)
	tree, err := buildInputTree(p.Opts, n, pj.Output)
	if err != nil {
		return nil, err
	}
	hd, err := st.computeLU(tree)
	if err != nil {
		return nil, err
	}

	// Store B as column bands so each solver mapper reads only its own.
	m0 := p.Opts.Nodes
	root := p.Opts.Root + "/SOLVE"
	p.FS.DeleteTree(root)
	for j := 0; j < m0; j++ {
		lo, hi := bandBounds(b.Cols, m0, j)
		if lo == hi {
			continue
		}
		if err := p.FS.WriteMatrix(fmt.Sprintf("%s/B.%d", root, j), b.Block(0, n, lo, hi)); err != nil {
			return nil, err
		}
	}
	perm := hd.p

	job := &mapreduce.Job{
		Name:     "solve",
		Splits:   mapreduce.ControlSplits(m0),
		Priority: p.Opts.Priority,
		Map: func(ctx *mapreduce.TaskContext, split mapreduce.InputSplit, emit mapreduce.Emitter) error {
			j := split.ID
			lo, hi := bandBounds(b.Cols, m0, j)
			if lo == hi {
				return nil
			}
			rd := nodeReader{fs: ctx.FS, node: ctx.Node}
			bband, err := rd.readMatrix(fmt.Sprintf("%s/B.%d", root, j))
			if err != nil {
				return err
			}
			l, err := hd.readL(rd)
			if err != nil {
				return err
			}
			u, err := hd.readU(rd)
			if err != nil {
				return err
			}
			// Forward: L Y = P B; backward: U X = Y (column-wise).
			x := perm.ApplyRows(bband)
			for c := 0; c < x.Cols; c++ {
				for i := 0; i < n; i++ {
					s := x.At(i, c)
					for t := 0; t < i; t++ {
						s -= l.At(i, t) * x.At(t, c)
					}
					x.Set(i, c, s)
				}
				for i := n - 1; i >= 0; i-- {
					s := x.At(i, c)
					for t := i + 1; t < n; t++ {
						s -= u.At(i, t) * x.At(t, c)
					}
					x.Set(i, c, s/u.At(i, i))
				}
			}
			ctx.IncrCounter("solve.columns", int64(hi-lo))
			return ctx.FS.WriteMatrix(fmt.Sprintf("%s/X.%d", root, j), x)
		},
	}
	job.TraceParent = st.span
	jr, err := p.Cluster.Run(job)
	if err != nil {
		return nil, err
	}
	st.recordJob(jr)

	out := matrix.New(n, b.Cols)
	rd := masterReader(p.FS)
	for j := 0; j < m0; j++ {
		lo, hi := bandBounds(b.Cols, m0, j)
		if lo == hi {
			continue
		}
		xband, err := rd.readMatrix(fmt.Sprintf("%s/X.%d", root, j))
		if err != nil {
			return nil, err
		}
		out.SetBlock(0, lo, xband)
	}
	return out, nil
}
