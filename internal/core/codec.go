package core

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/dfs"
	"repro/internal/matrix"
)

// On-disk encodings for the pipeline's non-matrix intermediates:
//
//   - permutation files ("p.txt" in Figure 4): the compact array S of
//     Section 4.1, one entry per row;
//   - indexed blocks: the triangular-inversion job's intermediate and
//     final files hold *discrete* (non-contiguous) rows and columns
//     (Section 5.4's grid blocks, "each of which contains discrete rows
//     and discrete columns"), so each file carries its row/column index
//     vectors alongside the dense payload.

const (
	permMagic    = uint32(0x50524d31) // "PRM1"
	indexedMagic = uint32(0x49584231) // "IXB1"

	// maxCodecDim caps every header-declared length before element
	// storage is allocated, mirroring matrix.ReadBinary's dimension
	// bound: a corrupt or hostile intermediate file must not be able
	// to demand a huge allocation with a few header bytes.
	maxCodecDim = 1 << 24
)

// writePerm stores p at path.
func writePerm(fs *dfs.FS, path string, p matrix.Perm) error {
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, permMagic); err != nil {
		return err
	}
	if err := binary.Write(&buf, binary.LittleEndian, uint32(len(p))); err != nil {
		return err
	}
	for _, v := range p {
		if err := binary.Write(&buf, binary.LittleEndian, int32(v)); err != nil {
			return err
		}
	}
	fs.Write(path, buf.Bytes())
	return nil
}

// readPerm loads a permutation from path.
func readPerm(fs *dfs.FS, path string) (matrix.Perm, error) {
	data, err := fs.Read(path)
	if err != nil {
		return nil, err
	}
	r := bytes.NewReader(data)
	var magic, n uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("core: readPerm %s: %w", path, err)
	}
	if magic != permMagic {
		return nil, fmt.Errorf("core: readPerm %s: bad magic %#x", path, magic)
	}
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > maxCodecDim {
		return nil, fmt.Errorf("core: readPerm %s: implausible length %d", path, n)
	}
	p := make(matrix.Perm, n)
	for i := range p {
		var v int32
		if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
			return nil, fmt.Errorf("core: readPerm %s entry %d: %w", path, i, err)
		}
		p[i] = int(v)
	}
	if !p.IsValid() {
		return nil, fmt.Errorf("core: readPerm %s: not a permutation", path)
	}
	return p, nil
}

// indexedBlock is a dense payload whose rows and columns correspond to
// arbitrary (sorted, discrete) global indices. RowIdx has len Data.Rows and
// ColIdx len Data.Cols; a nil index vector means the identity 0..k-1.
type indexedBlock struct {
	RowIdx []int
	ColIdx []int
	Data   *matrix.Dense
}

// writeIndexed stores b at path.
func writeIndexed(fs *dfs.FS, path string, b indexedBlock) error {
	if b.RowIdx != nil && len(b.RowIdx) != b.Data.Rows {
		return fmt.Errorf("core: writeIndexed %s: %d row indices for %d rows", path, len(b.RowIdx), b.Data.Rows)
	}
	if b.ColIdx != nil && len(b.ColIdx) != b.Data.Cols {
		return fmt.Errorf("core: writeIndexed %s: %d col indices for %d cols", path, len(b.ColIdx), b.Data.Cols)
	}
	var buf bytes.Buffer
	w := func(v uint32) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	w(indexedMagic)
	w(uint32(len(b.RowIdx)))
	w(uint32(len(b.ColIdx)))
	for _, v := range b.RowIdx {
		w(uint32(v))
	}
	for _, v := range b.ColIdx {
		w(uint32(v))
	}
	if err := matrix.WriteBinary(&buf, b.Data); err != nil {
		return err
	}
	fs.Write(path, buf.Bytes())
	return nil
}

// readIndexed loads an indexed block written by writeIndexed.
func readIndexed(rd fsRawReader, path string) (indexedBlock, error) {
	data, err := rd.read(path)
	if err != nil {
		return indexedBlock{}, err
	}
	r := bytes.NewReader(data)
	var magic, nr, nc uint32
	for _, p := range []*uint32{&magic, &nr, &nc} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return indexedBlock{}, fmt.Errorf("core: readIndexed %s: %w", path, err)
		}
	}
	if magic != indexedMagic {
		return indexedBlock{}, fmt.Errorf("core: readIndexed %s: bad magic %#x", path, magic)
	}
	if nr > maxCodecDim || nc > maxCodecDim {
		return indexedBlock{}, fmt.Errorf("core: readIndexed %s: implausible index counts %dx%d", path, nr, nc)
	}
	readIdx := func(n uint32) ([]int, error) {
		if n == 0 {
			return nil, nil
		}
		out := make([]int, n)
		for i := range out {
			var v uint32
			if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
				return nil, err
			}
			out[i] = int(v)
		}
		return out, nil
	}
	rowIdx, err := readIdx(nr)
	if err != nil {
		return indexedBlock{}, fmt.Errorf("core: readIndexed %s rows: %w", path, err)
	}
	colIdx, err := readIdx(nc)
	if err != nil {
		return indexedBlock{}, fmt.Errorf("core: readIndexed %s cols: %w", path, err)
	}
	m, err := matrix.ReadBinary(r)
	if err != nil {
		return indexedBlock{}, fmt.Errorf("core: readIndexed %s payload: %w", path, err)
	}
	if rowIdx != nil && len(rowIdx) != m.Rows {
		return indexedBlock{}, fmt.Errorf("core: readIndexed %s: index/shape mismatch", path)
	}
	if colIdx != nil && len(colIdx) != m.Cols {
		return indexedBlock{}, fmt.Errorf("core: readIndexed %s: index/shape mismatch", path)
	}
	return indexedBlock{RowIdx: rowIdx, ColIdx: colIdx, Data: m}, nil
}

// fsRawReader mirrors fsReader for raw byte files, again so reads are
// attributed to the executing node.
type fsRawReader interface {
	read(path string) ([]byte, error)
}

func (r nodeReader) read(path string) ([]byte, error) {
	if r.node >= 0 {
		return r.fs.ReadFrom(path, r.node)
	}
	return r.fs.Read(path)
}
