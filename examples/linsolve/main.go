// Linear system solving — the paper's first Section 1 application: to
// solve A x = b, multiply both sides by A⁻¹ obtained from the MapReduce
// pipeline, and compare against a direct single-node LU solve.
//
// Run with:
//
//	go run repro/examples/linsolve
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	mrinverse "repro"
)

func main() {
	n := flag.Int("n", 200, "number of equations")
	nodes := flag.Int("nodes", 4, "simulated cluster nodes")
	flag.Parse()

	// A well-conditioned random system with a known solution.
	a := mrinverse.DiagonallyDominant(*n, 7)
	truth := make([]float64, *n)
	for i := range truth {
		truth[i] = math.Sin(float64(i))
	}
	b := make([]float64, *n)
	for i := 0; i < *n; i++ {
		for j := 0; j < *n; j++ {
			b[i] += a.At(i, j) * truth[j]
		}
	}

	opts := mrinverse.DefaultOptions(*nodes)
	opts.NB = 64
	fmt.Printf("solving a %d-equation system via x = A⁻¹ b on %d nodes\n", *n, opts.Nodes)

	x, err := mrinverse.Solve(a, b, opts)
	if err != nil {
		log.Fatalf("solve: %v", err)
	}

	var worst float64
	for i := range truth {
		if d := math.Abs(x[i] - truth[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("max |x - truth| = %.3g\n", worst)

	// Cross-check against the single-node inverse route.
	inv, err := mrinverse.InvertLocal(a)
	if err != nil {
		log.Fatalf("local invert: %v", err)
	}
	var worstVsLocal float64
	for i := 0; i < *n; i++ {
		var xi float64
		for j := 0; j < *n; j++ {
			xi += inv.At(i, j) * b[j]
		}
		if d := math.Abs(xi - x[i]); d > worstVsLocal {
			worstVsLocal = d
		}
	}
	fmt.Printf("max |x_mapreduce - x_local| = %.3g\n", worstVsLocal)
	if worst < 1e-6 {
		fmt.Println("solution verified")
	} else {
		log.Fatal("solution inaccurate")
	}
}
