// Computed tomography reconstruction — the paper's Section 1 imaging
// application: a detector observes T = M·S where M is the projection
// matrix and S the original image; the image is reconstructed as
// S = M⁻¹·T using the MapReduce inverse.
//
// This example builds a synthetic 1-D phantom image, projects it through a
// random ray matrix, reconstructs it through the pipeline, and reports the
// reconstruction error.
//
// Run with:
//
//	go run repro/examples/tomography
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"strings"

	mrinverse "repro"
)

func main() {
	pixels := flag.Int("pixels", 128, "image pixels (projection matrix order)")
	nodes := flag.Int("nodes", 4, "simulated cluster nodes")
	flag.Parse()

	// The phantom: two bright blobs on a dark background.
	phantom := make([]float64, *pixels)
	for i := range phantom {
		x := float64(i) / float64(*pixels)
		phantom[i] = math.Exp(-200*(x-0.3)*(x-0.3)) + 0.6*math.Exp(-400*(x-0.7)*(x-0.7))
	}

	// The projection matrix: each detector row integrates a pseudo-ray's
	// window of pixels with random attenuation weights, plus a diagonal
	// ridge for invertibility.
	m := projection(*pixels, 99)

	// The detector reading T = M S.
	t := make([]float64, *pixels)
	for i := 0; i < *pixels; i++ {
		for j := 0; j < *pixels; j++ {
			t[i] += m.At(i, j) * phantom[j]
		}
	}

	// Reconstruct: S = M^-1 T with the MapReduce inverse.
	opts := mrinverse.DefaultOptions(*nodes)
	opts.NB = 32
	inv, rep, err := mrinverse.Invert(m, opts)
	if err != nil {
		log.Fatalf("invert projection matrix: %v", err)
	}
	recon := make([]float64, *pixels)
	for i := 0; i < *pixels; i++ {
		for j := 0; j < *pixels; j++ {
			recon[i] += inv.At(i, j) * t[j]
		}
	}

	var worst float64
	for i := range phantom {
		if d := math.Abs(recon[i] - phantom[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("reconstructed %d-pixel image via %d MapReduce jobs; max pixel error %.3g\n",
		*pixels, rep.JobsRun, worst)
	fmt.Println("phantom:      ", sparkline(phantom))
	fmt.Println("reconstruction", sparkline(recon))
	if worst > 1e-6 {
		log.Fatal("reconstruction failed")
	}
}

func projection(pixels int, seed int64) *mrinverse.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := mrinverse.NewMatrix(pixels, pixels)
	for ray := 0; ray < pixels; ray++ {
		width := 1 + rng.Intn(pixels/2+1)
		start := rng.Intn(pixels)
		for k := 0; k < width; k++ {
			j := (start + k) % pixels
			m.Set(ray, j, m.At(ray, j)+rng.Float64())
		}
		m.Set(ray, ray, m.At(ray, ray)+float64(pixels))
	}
	return m
}

// sparkline renders a vector as a coarse text plot.
func sparkline(v []float64) string {
	marks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := v[0], v[0]
	for _, x := range v {
		lo, hi = math.Min(lo, x), math.Max(hi, x)
	}
	var b strings.Builder
	step := len(v) / 64
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(v); i += step {
		t := (v[i] - lo) / (hi - lo + 1e-12)
		b.WriteRune(marks[int(t*7.999)])
	}
	return b.String()
}
