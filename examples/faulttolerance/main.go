// Fault-tolerance demonstration — the property the paper gets "for free"
// from MapReduce and HDFS (Sections 1 and 7.4): task attempts crash and
// are re-executed, datanode replicas rot and are healed on read, and (the
// Section 8 port) Spark partitions are lost and recomputed from lineage.
// All three recovery paths run here against the same matrix, and every
// inverse still satisfies the Section 7.2 residual criterion.
//
// Run with:
//
//	go run repro/examples/faulttolerance
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"

	mrinverse "repro"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/mapreduce"
	"repro/internal/spark"
)

func main() {
	n := flag.Int("n", 128, "matrix order")
	nodes := flag.Int("nodes", 4, "simulated cluster nodes")
	flag.Parse()

	a := mrinverse.Random(*n, 13)
	opts := mrinverse.DefaultOptions(*nodes)
	opts.NB = 32

	// --- 1. MapReduce task crashes, rescheduled attempts recover ---
	fs := dfs.New(opts.Nodes, dfs.DefaultReplication)
	cl := mapreduce.NewCluster(fs, opts.Nodes)
	rng := rand.New(rand.NewSource(7))
	var mu sync.Mutex
	crashed := 0
	cl.InjectFailure = func(job string, task, attempt int, isMap bool) error {
		mu.Lock()
		defer mu.Unlock()
		if attempt == 0 && rng.Float64() < 0.3 {
			crashed++
			return errors.New("simulated task crash")
		}
		return nil
	}
	pipe, err := core.NewPipelineOn(opts, fs, cl)
	if err != nil {
		log.Fatal(err)
	}
	inv, rep, err := pipe.Invert(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1. MapReduce: %d task attempts crashed, %d recorded failures, job pipeline completed\n",
		crashed, rep.TaskFailures)
	fmt.Printf("   residual after recovery: %.2g\n", mrinverse.Residual(a, inv))

	// --- 2. HDFS replica corruption, healed by checksum verification ---
	files := fs.List("")
	corrupted := 0
	for i, path := range files {
		if i%3 == 0 {
			if err := fs.Corrupt(path, 0); err == nil {
				corrupted++
			}
		}
	}
	for _, path := range files {
		if _, err := fs.Read(path); err != nil {
			log.Fatalf("read %s after corruption: %v", path, err)
		}
	}
	fmt.Printf("2. HDFS: corrupted one replica of %d files; %d healed on read, zero data loss\n",
		corrupted, fs.Stats().CorruptionsHealed)

	// --- 3. Spark lineage: evict every cached partition, recompute ---
	ctx := spark.NewContext(*nodes)
	siv := spark.NewInverter(ctx, 32, *nodes)
	sparkInv, err := siv.Invert(a)
	if err != nil {
		log.Fatal(err)
	}
	for _, stage := range siv.Stages {
		stage.EvictAll()
	}
	// Re-collect a stage to force lineage recomputation.
	if len(siv.Stages) > 0 {
		if _, err := siv.Stages[len(siv.Stages)-1].Collect(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("3. Spark: evicted all cached partitions of %d stages; %d recomputed from lineage\n",
		len(siv.Stages), ctx.Recomputes())
	fmt.Printf("   residual: %.2g\n", mrinverse.Residual(a, sparkInv))
}
