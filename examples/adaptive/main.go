// Adaptive engine selection and the in-memory engine — the paper's two
// Section 8 future-work items, working together: AutoInvert models all
// three inversion techniques for a hypothetical cluster and executes the
// fastest feasible one; InvertSpark runs the same block-LU recursion on a
// Spark-style RDD engine with lineage fault tolerance.
//
// Run with:
//
//	go run repro/examples/adaptive
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	mrinverse "repro"
)

func main() {
	n := flag.Int("n", 192, "matrix order for the real runs")
	flag.Parse()

	fmt.Println("--- adaptive planning (modeled on the paper's EC2 clusters) ---")
	for _, tc := range []struct {
		order int
		spec  mrinverse.ClusterSpec
	}{
		{800, mrinverse.ClusterSpec{Nodes: 64}},                  // trivial: one node wins
		{20480, mrinverse.ClusterSpec{Nodes: 16}},                // M1: in-memory MPI wins
		{102400, mrinverse.ClusterSpec{Nodes: 64}},               // M4: only MapReduce fits
		{102400, mrinverse.ClusterSpec{Nodes: 128, Large: true}}, // M4 on big iron
	} {
		choice := mrinverse.PlanEngine(tc.order, tc.spec, 0)
		kind := "medium"
		if tc.spec.Large {
			kind = "large"
		}
		fmt.Printf("n=%-7d on %3d %-6s -> %-10s\n    %s\n",
			tc.order, tc.spec.Nodes, kind, choice.Engine, choice.Reason)
	}

	fmt.Println()
	fmt.Println("--- adaptive execution at this machine's scale ---")
	a := mrinverse.Random(*n, 11)
	inv, choice, err := mrinverse.AutoInvert(a, mrinverse.ClusterSpec{Nodes: 8}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n=%d executed with %s; residual %.2g\n", *n, choice.Engine, mrinverse.Residual(a, inv))

	fmt.Println()
	fmt.Println("--- Spark-style in-memory engine vs the HDFS-backed pipeline ---")
	start := time.Now()
	sparkInv, err := mrinverse.InvertSpark(a, 4, 48)
	if err != nil {
		log.Fatal(err)
	}
	sparkT := time.Since(start)

	opts := mrinverse.DefaultOptions(4)
	opts.NB = 48
	start = time.Now()
	mrInv, rep, err := mrinverse.Invert(a, opts)
	if err != nil {
		log.Fatal(err)
	}
	mrT := time.Since(start)

	fmt.Printf("spark:     %-10v residual %.2g (intermediates in memory, lineage fault tolerance)\n",
		sparkT.Round(time.Millisecond), mrinverse.Residual(a, sparkInv))
	fmt.Printf("mapreduce: %-10v residual %.2g (%d HDFS bytes read across %d jobs)\n",
		mrT.Round(time.Millisecond), mrinverse.Residual(a, mrInv), rep.FS.BytesRead, rep.JobsRun)

	var worst float64
	for i := range sparkInv.Data {
		if d := sparkInv.Data[i] - mrInv.Data[i]; d > worst {
			worst = d
		} else if -d > worst {
			worst = -d
		}
	}
	fmt.Printf("max |spark - mapreduce| = %.3g (same algorithm, different engine)\n", worst)
}
