// Quickstart: invert a random matrix with the MapReduce pipeline on a
// simulated 8-node cluster and verify the paper's Section 7.2 correctness
// criterion (every element of I - A·A⁻¹ small).
//
// Run with:
//
//	go run repro/examples/quickstart
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	mrinverse "repro"
)

func main() {
	n := flag.Int("n", 256, "matrix order")
	nodes := flag.Int("nodes", 8, "simulated cluster nodes (m0)")
	nb := flag.Int("nb", 64, "bound value: largest submatrix decomposed on the master")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	a := mrinverse.Random(*n, *seed)
	opts := mrinverse.DefaultOptions(*nodes)
	opts.NB = *nb

	fmt.Printf("inverting a %dx%d random matrix on %d simulated nodes (nb=%d)\n", *n, *n, opts.Nodes, opts.NB)
	fmt.Printf("pipeline: %d MapReduce jobs (1 partition + %d block-LU + 1 inversion)\n",
		mrinverse.PipelineJobs(*n, *nb), mrinverse.PipelineJobs(*n, *nb)-2)

	start := time.Now()
	inv, rep, err := mrinverse.Invert(a, opts)
	if err != nil {
		log.Fatalf("invert: %v", err)
	}

	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("  jobs run:           %d (depth %d)\n", rep.JobsRun, rep.Depth)
	fmt.Printf("  map/reduce tasks:   %d/%d\n", rep.MapTasks, rep.ReduceTasks)
	fmt.Printf("  block-wrap grid:    %d x %d\n", rep.F1, rep.F2)
	fmt.Printf("  L stored in:        %d separate files (Section 6.1's N(d))\n", rep.LFactorFiles)
	fmt.Printf("  HDFS bytes written: %d\n", rep.FS.BytesWritten)
	fmt.Printf("  HDFS bytes read:    %d\n", rep.FS.BytesRead)
	fmt.Printf("  residual max|I-AA⁻¹|: %.3g (paper's bound: 1e-5)\n", mrinverse.Residual(a, inv))
}
