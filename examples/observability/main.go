// Observability walkthrough — tracing and metering one pipeline inversion
// with internal/obs, the repository's span tracer and metrics registry.
//
// The run below inverts a 96x96 matrix on a 4-node simulated cluster with
// a tracer and metrics attached, then produces every artifact the
// subsystem offers:
//
//   - a Chrome trace-event JSON file (open in chrome://tracing or
//     ui.perfetto.dev: one track per simulated node plus a master track,
//     one slice per pipeline/job/phase/task-attempt span);
//   - the plain-text span summary (jobs with task counts and byte flows);
//   - the critical-path report (which spans the wall-clock actually
//     waited on, with per-track attribution);
//   - the metrics registry (counters and latency histograms fed by the
//     MapReduce engine and the DFS).
//
// Run with:
//
//	go run repro/examples/observability
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	mrinverse "repro"
	"repro/internal/obs"
)

func main() {
	n := flag.Int("n", 96, "matrix order")
	nb := flag.Int("nb", 24, "bound value")
	nodes := flag.Int("nodes", 4, "simulated cluster nodes")
	out := flag.String("o", "trace.json", "Chrome trace output file")
	flag.Parse()

	a := mrinverse.Random(*n, 7)
	tracer := mrinverse.NewTracer()
	metrics := mrinverse.NewMetrics()

	opts := mrinverse.DefaultOptions(*nodes)
	opts.NB = *nb
	inv, rep, err := mrinverse.InvertObserved(a, opts, tracer, metrics)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inverted %dx%d over %d MapReduce jobs; residual %.2g\n",
		*n, *n, rep.JobsRun, mrinverse.Residual(a, inv))
	fmt.Printf("root span byte attrs match the report: read=%d/%d written=%d/%d\n\n",
		rep.Trace.Attrs["dfs.bytes_read"], rep.FS.BytesRead,
		rep.Trace.Attrs["dfs.bytes_written"], rep.FS.BytesWritten)

	spans := tracer.Snapshot()

	// Artifact 1: the Chrome trace file.
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := obs.WriteChromeTrace(f, spans); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d spans to %s — open it in chrome://tracing or ui.perfetto.dev\n\n", len(spans), *out)

	// Artifact 2: the plain-text span summary.
	fmt.Print(obs.SummarizeString(spans))
	fmt.Println()

	// Artifact 3: the critical path — where the wall-clock actually went.
	root := obs.Root(spans)
	cp, err := obs.ComputeCriticalPath(spans, root.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(cp.String())
	fmt.Println()

	// Artifact 4: the metrics registry.
	fmt.Print(metrics.String())
}
