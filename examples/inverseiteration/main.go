// Inverse iteration — the paper's Section 1 eigenvector application: given
// an approximate eigenvalue mu, iterate
//
//	v_{k+1} = (A - mu·I)⁻¹ v_k / ||(A - mu·I)⁻¹ v_k||
//
// using the MapReduce inverse of the shifted matrix. The current
// eigenvalue estimate is the Rayleigh quotient lambda = vᵀAv / vᵀv.
//
// Run with:
//
//	go run repro/examples/inverseiteration
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	mrinverse "repro"
)

func main() {
	n := flag.Int("n", 96, "matrix order")
	nodes := flag.Int("nodes", 4, "simulated cluster nodes")
	iters := flag.Int("iters", 12, "inverse-iteration steps")
	mu := flag.Float64("mu", 0, "eigenvalue shift (approximate eigenvalue)")
	flag.Parse()

	// A symmetric matrix with a well-separated spectrum: the [-1,2,-1]
	// tridiagonal operator. Its eigenvalues are 2 - 2cos(k·pi/(n+1)); the
	// shift mu=0 targets the smallest one.
	a := tridiagonal(*n)

	// Shifted matrix A - mu I, inverted once through the pipeline.
	shifted := a.Clone()
	for i := 0; i < *n; i++ {
		shifted.Set(i, i, shifted.At(i, i)-*mu)
	}
	opts := mrinverse.DefaultOptions(*nodes)
	opts.NB = 32
	inv, rep, err := mrinverse.Invert(shifted, opts)
	if err != nil {
		log.Fatalf("invert: %v", err)
	}
	fmt.Printf("inverted (A - %.3g·I) of order %d in %d MapReduce jobs\n", *mu, *n, rep.JobsRun)

	// Power iteration on the inverse.
	v := make([]float64, *n)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(*n))
	}
	var lambda float64
	for k := 0; k < *iters; k++ {
		w := make([]float64, *n)
		for i := 0; i < *n; i++ {
			for j := 0; j < *n; j++ {
				w[i] += inv.At(i, j) * v[j]
			}
		}
		norm := 0.0
		for _, x := range w {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		for i := range w {
			w[i] /= norm
		}
		v = w
		lambda = rayleigh(a, v)
		fmt.Printf("  iter %2d: lambda = %.9f\n", k+1, lambda)
	}

	exact := 2 - 2*math.Cos(math.Pi/float64(*n+1))
	fmt.Printf("converged lambda = %.9f, exact smallest eigenvalue = %.9f (err %.2g)\n",
		lambda, exact, math.Abs(lambda-exact))
	if math.Abs(lambda-exact) > 1e-6 {
		log.Fatal("inverse iteration failed to converge to the target eigenvalue")
	}
}

func tridiagonal(n int) *mrinverse.Matrix {
	m := mrinverse.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 2)
		if i > 0 {
			m.Set(i, i-1, -1)
		}
		if i < n-1 {
			m.Set(i, i+1, -1)
		}
	}
	return m
}

func rayleigh(a *mrinverse.Matrix, v []float64) float64 {
	n := len(v)
	num, den := 0.0, 0.0
	for i := 0; i < n; i++ {
		var av float64
		for j := 0; j < n; j++ {
			av += a.At(i, j) * v[j]
		}
		num += v[i] * av
		den += v[i] * v[i]
	}
	return num / den
}
