// Package mrinverse is the public API of this repository: scalable matrix
// inversion using MapReduce, a from-scratch Go reproduction of Xiang, Meng
// and Aboulnaga, "Scalable Matrix Inversion Using MapReduce" (HPDC 2014).
//
// The package exposes several inverters:
//
//   - Invert: the paper's contribution — recursive block LU decomposition
//     executed as a pipeline of MapReduce jobs over a simulated Hadoop
//     cluster (internal/mapreduce + internal/dfs), with the Section 6
//     optimizations togglable via Options;
//   - InvertLocal: the single-node Algorithm 1 reference (LU with partial
//     pivoting, Equation 4 triangular inversion);
//   - InvertScaLAPACK: the paper's comparison baseline, a block-cyclic
//     message-passing implementation in the ScaLAPACK style;
//   - InvertSpark (auto.go): the paper's Section 8 future work, the same
//     algorithm on an in-memory lineage-tracked engine;
//   - AutoInvert (auto.go): Section 8's adaptive technique selection.
//
// Around them: Decompose, Determinant, SolveDirect, Multiply, Refine, and
// the Section 1 applications (Solve, InverseIteration, ReconstructImage,
// ConditionNumber).
//
// All inverters operate on *Matrix (a dense row-major float64 matrix) and
// satisfy the paper's Section 7.2 acceptance criterion, which Residual
// computes: every element of I - A·A⁻¹ small.
//
// A minimal session:
//
//	a := mrinverse.Random(512, 42)
//	inv, report, err := mrinverse.Invert(a, mrinverse.DefaultOptions(8))
//	if err != nil { ... }
//	fmt.Println(report.JobsRun, mrinverse.Residual(a, inv))
package mrinverse

import (
	"context"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/lu"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/scalapack"
	"repro/internal/workload"
)

// Matrix is a dense, row-major matrix of float64 values. See
// internal/matrix for the full method set (At, Set, Block, Transpose, ...).
type Matrix = matrix.Dense

// Perm is a compact row permutation (the paper's array S).
type Perm = matrix.Perm

// Options configures the MapReduce pipeline: node count m0, bound value
// nb, and the Section 6 optimization toggles.
type Options = core.Options

// Report summarizes a pipeline run: jobs, tasks, failures, file counts,
// and byte-level I/O accounting.
type Report = core.Report

// ScaLAPACKConfig configures the MPI baseline.
type ScaLAPACKConfig = scalapack.Config

// ScaLAPACKStats reports the baseline's communication volume.
type ScaLAPACKStats = scalapack.Stats

// Tracer records a hierarchical span tree of a run (internal/obs). Attach
// one with InvertObserved, export it with WriteChromeTrace, analyze it
// with obs.ComputeCriticalPath. A nil Tracer disables tracing at zero cost.
type Tracer = obs.Tracer

// Metrics is a registry of counters, gauges, and latency histograms fed by
// the instrumented layers (internal/obs).
type Metrics = obs.Registry

// NewTracer returns an empty span tracer.
func NewTracer() *Tracer { return obs.New() }

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// DefaultOptions returns the paper's optimized configuration for a
// simulated cluster of the given node count.
func DefaultOptions(nodes int) Options { return core.DefaultOptions(nodes) }

// NewMatrix returns a zero r x c matrix.
func NewMatrix(r, c int) *Matrix { return matrix.New(r, c) }

// FromRows builds a matrix from rows, copying the data.
func FromRows(rows [][]float64) *Matrix { return matrix.FromRows(rows) }

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix { return matrix.Identity(n) }

// Random returns a seeded random n x n matrix with Uniform(-1,1) entries —
// the paper's synthetic workload.
func Random(n int, seed int64) *Matrix { return workload.Random(n, seed) }

// DiagonallyDominant returns a seeded random diagonally dominant matrix,
// guaranteed nonsingular and well conditioned.
func DiagonallyDominant(n int, seed int64) *Matrix { return workload.DiagonallyDominant(n, seed) }

// Input-validation sentinels: every inverter entry point of this package
// rejects nil, empty, and rectangular inputs with one of these typed
// errors (test with errors.Is). Serving layers map them to client errors
// (HTTP 400) rather than internal failures.
var (
	ErrNilMatrix   = core.ErrNilMatrix
	ErrEmptyMatrix = core.ErrEmptyMatrix
	ErrNotSquare   = core.ErrNotSquare
)

// ValidateInput checks that a is a usable inversion input — non-nil,
// non-empty, square — returning one of the sentinel errors otherwise.
func ValidateInput(a *Matrix) error { return core.ValidateInput(a) }

// Invert computes A^-1 with the paper's MapReduce pipeline on a fresh
// simulated cluster and returns the run report alongside the inverse.
func Invert(a *Matrix, opts Options) (*Matrix, *Report, error) {
	return InvertCtx(context.Background(), a, opts)
}

// InvertCtx is Invert with a deadline/cancellation context: the pipeline
// observes ctx cooperatively between MapReduce jobs and phases, so a
// canceled or expired request stops consuming the simulated cluster at the
// next job boundary. An already-expired ctx returns before any cluster
// work is scheduled.
func InvertCtx(ctx context.Context, a *Matrix, opts Options) (*Matrix, *Report, error) {
	if err := core.ValidateInput(a); err != nil {
		return nil, nil, err
	}
	p, err := core.NewPipeline(opts)
	if err != nil {
		return nil, nil, err
	}
	return p.InvertCtx(ctx, a)
}

// InvertObserved is Invert with observability attached: spans land in tr
// and counters in met (either may be nil). The returned Report's Trace
// field holds the run's root span.
func InvertObserved(a *Matrix, opts Options, tr *Tracer, met *Metrics) (*Matrix, *Report, error) {
	if err := core.ValidateInput(a); err != nil {
		return nil, nil, err
	}
	p, err := core.NewPipeline(opts)
	if err != nil {
		return nil, nil, err
	}
	p.Tracer = tr
	p.Metrics = met
	return p.Invert(a)
}

// Decompose runs the pipeline's partition and block-LU stages only,
// returning P, L, U with P·A = L·U.
func Decompose(a *Matrix, opts Options) (Perm, *Matrix, *Matrix, error) {
	p, err := core.NewPipeline(opts)
	if err != nil {
		return nil, nil, nil, err
	}
	return p.Decompose(a)
}

// InvertLocal computes A^-1 on a single node with Algorithm 1 (LU with
// partial pivoting) and Equation 4 triangular inversion.
func InvertLocal(a *Matrix) (*Matrix, error) { return lu.Invert(a) }

// InvertScaLAPACK computes A^-1 with the distributed-memory MPI baseline.
func InvertScaLAPACK(a *Matrix, cfg ScaLAPACKConfig) (*Matrix, *ScaLAPACKStats, error) {
	return scalapack.Invert(a, cfg)
}

// Solve solves the linear system A x = b through the MapReduce inverse:
// x = A^-1 b — the paper's Section 1 motivating application.
func Solve(a *Matrix, b []float64, opts Options) ([]float64, error) {
	if a.Rows != len(b) {
		return nil, fmt.Errorf("mrinverse: Solve: %d equations, %d rhs values", a.Rows, len(b))
	}
	inv, _, err := Invert(a, opts)
	if err != nil {
		return nil, err
	}
	return matrix.MulVec(inv, b)
}

// SolveDirect solves A X = B through the decomposition pipeline without
// forming A^-1: the factors are computed by the usual partition + block-LU
// jobs, then a map-only job substitutes disjoint bands of B's columns —
// 2n^2 work per right-hand side instead of the n^3 inversion. Prefer this
// over Solve when the number of right-hand sides is small.
func SolveDirect(a, b *Matrix, opts Options) (*Matrix, error) {
	p, err := core.NewPipeline(opts)
	if err != nil {
		return nil, err
	}
	return p.Solve(a, b)
}

// Multiply computes A * B with one MapReduce job using the Section 6.2
// block-wrap layout (togglable via opts.BlockWrap).
func Multiply(a, b *Matrix, opts Options) (*Matrix, error) {
	p, err := core.NewPipeline(opts)
	if err != nil {
		return nil, err
	}
	return p.Multiply(a, b)
}

// Determinant computes det(A) through the MapReduce decomposition:
// sign(P) times the product of U's diagonal.
func Determinant(a *Matrix, opts Options) (float64, error) {
	p, err := core.NewPipeline(opts)
	if err != nil {
		return 0, err
	}
	return p.Determinant(a)
}

// Refine improves a computed inverse with Newton-Schulz iteration
// (X' = X(2I - AX)), returning the refined inverse and its final
// max|I - AX| residual. Use it to tighten accuracy on ill-conditioned
// inputs after any of the inverters.
func Refine(a, x *Matrix, maxIter int) (*Matrix, float64, error) {
	return lu.RefineInverse(a, x, maxIter)
}

// Residual returns max |I - A·B|, the paper's Section 7.2 correctness
// metric (they verify every element of I - M·M^-1 is below 1e-5).
func Residual(a, b *Matrix) float64 {
	r, err := matrix.IdentityResidual(a, b)
	if err != nil {
		return math.Inf(1)
	}
	return r
}

// PipelineJobs returns the number of MapReduce jobs the pipeline runs for
// an order-n matrix with bound value nb — Table 3's "Number of Jobs".
func PipelineJobs(n, nb int) int { return core.PipelineJobs(n, nb) }

// WriteMatrixFile stores m at path; ".txt" selects the paper's text
// format, ".mtx" the MatrixMarket array format, anything else the binary
// format.
func WriteMatrixFile(path string, m *Matrix) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".txt"):
		err = matrix.WriteText(f, m)
	case strings.HasSuffix(path, ".mtx"):
		err = matrix.WriteMatrixMarket(f, m)
	default:
		err = matrix.WriteBinary(f, m)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

// ReadMatrixFile loads a matrix stored by WriteMatrixFile (or any
// MatrixMarket array-format .mtx file).
func ReadMatrixFile(path string) (*Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".txt"):
		return matrix.ReadText(f)
	case strings.HasSuffix(path, ".mtx"):
		return matrix.ReadMatrixMarket(f)
	default:
		return matrix.ReadBinary(f)
	}
}
