package mrinverse

// The benchmark harness: one benchmark per table/figure of the paper's
// evaluation (Section 7), each running the real system at laptop scale and
// reporting the quantities the corresponding artifact plots as custom
// metrics, plus kernel micro-benchmarks. The paper-scale series come from
// `go run repro/cmd/mrbench -exp all`; EXPERIMENTS.md records both.

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/cholesky"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/dfs"
	"repro/internal/gaussjordan"
	"repro/internal/lu"
	"repro/internal/mapreduce"
	"repro/internal/matrix"
	"repro/internal/qr"
	"repro/internal/scalapack"
	"repro/internal/workload"
)

const (
	benchOrder = 256
	benchNB    = 64
)

func benchOpts(nodes int) Options {
	o := DefaultOptions(nodes)
	o.NB = benchNB
	return o
}

func runPipeline(b *testing.B, a *Matrix, opts Options) *Report {
	b.Helper()
	var rep *Report
	for i := 0; i < b.N; i++ {
		var err error
		_, rep, err = Invert(a, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	return rep
}

// BenchmarkTable1LUTransfer measures the LU-decomposition phase (partition
// + block-LU jobs) and reports measured HDFS traffic per n^2, the paper's
// Table 1 quantities.
func BenchmarkTable1LUTransfer(b *testing.B) {
	a := Random(benchOrder, 10)
	opts := benchOpts(8)
	var written, read int64
	for i := 0; i < b.N; i++ {
		p, err := core.NewPipeline(opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, _, err := p.Decompose(a); err != nil {
			b.Fatal(err)
		}
		st := p.FS.Stats()
		written, read = st.BytesWritten, st.BytesRead
	}
	n2 := float64(benchOrder) * float64(benchOrder) * 8
	b.ReportMetric(float64(written)/n2, "writeN2")
	b.ReportMetric(float64(read)/n2, "readN2")
	pred := costmodel.OursLU(benchOrder, opts.Nodes)
	b.ReportMetric(pred.Read/(float64(benchOrder)*float64(benchOrder)), "tableReadN2")
}

// BenchmarkTable1ScaLAPACKTransfer measures the baseline's communication
// volume, Table 1's ScaLAPACK row (2/3 m0 n^2 scaling).
func BenchmarkTable1ScaLAPACKTransfer(b *testing.B) {
	a := Random(benchOrder, 11)
	var st *ScaLAPACKStats
	for i := 0; i < b.N; i++ {
		var err error
		_, st, err = InvertScaLAPACK(a, ScaLAPACKConfig{Procs: 8, BlockSize: 32})
		if err != nil {
			b.Fatal(err)
		}
	}
	n2 := float64(benchOrder) * float64(benchOrder) * 8
	b.ReportMetric(float64(st.BytesTransferred)/n2, "transferN2")
}

// BenchmarkTable2Inversion measures the triangular-inversion/final-output
// phase in isolation: full pipeline minus decomposition-only run.
func BenchmarkTable2Inversion(b *testing.B) {
	a := Random(benchOrder, 12)
	opts := benchOpts(8)
	rep := runPipeline(b, a, opts)
	n2 := float64(benchOrder) * float64(benchOrder) * 8
	b.ReportMetric(float64(rep.FS.BytesWritten)/n2, "totalWriteN2")
	b.ReportMetric(float64(rep.FS.BytesRead)/n2, "totalReadN2")
}

// BenchmarkTable3Jobs verifies and times the job-count law across the
// paper's five matrices (pure pipeline-structure computation).
func BenchmarkTable3Jobs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range workload.Table3 {
			if got := PipelineJobs(s.Order, workload.PaperNB); got != s.Jobs {
				b.Fatalf("%s: %d jobs, want %d", s.Name, got, s.Jobs)
			}
		}
	}
}

// BenchmarkFig6Scaling runs the real pipeline across node counts at fixed
// order — Figure 6's strong-scaling sweep. Simulated nodes share this
// machine's cores, so the interesting metrics are the per-run job and I/O
// accounting; paper-scale times come from the cost model.
func BenchmarkFig6Scaling(b *testing.B) {
	a := Random(benchOrder, 13)
	for _, nodes := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			rep := runPipeline(b, a, benchOpts(nodes))
			b.ReportMetric(float64(rep.JobsRun), "jobs")
			b.ReportMetric(float64(rep.FS.BytesRead), "bytesRead")
		})
	}
}

// BenchmarkFig7SeparateFiles is the Section 6.1 ablation: optimized vs
// master-side combining.
func BenchmarkFig7SeparateFiles(b *testing.B) {
	a := Random(benchOrder, 14)
	for _, sep := range []bool{true, false} {
		name := "separate"
		if !sep {
			name = "combined"
		}
		b.Run(name, func(b *testing.B) {
			opts := benchOpts(8)
			opts.SeparateFiles = sep
			rep := runPipeline(b, a, opts)
			b.ReportMetric(float64(rep.FS.BytesWritten), "bytesWritten")
			b.ReportMetric(float64(rep.LFactorFiles), "factorFiles")
		})
	}
}

// BenchmarkFig7BlockWrap is the Section 6.2 ablation: block-wrap vs naive
// multiplication layout.
func BenchmarkFig7BlockWrap(b *testing.B) {
	a := Random(benchOrder, 15)
	for _, wrap := range []bool{true, false} {
		name := "blockwrap"
		if !wrap {
			name = "naive"
		}
		b.Run(name, func(b *testing.B) {
			opts := benchOpts(16)
			opts.BlockWrap = wrap
			rep := runPipeline(b, a, opts)
			b.ReportMetric(float64(rep.FS.BytesRead), "bytesRead")
		})
	}
}

// BenchmarkFig7TransposeU is the Section 6.3 ablation: transposed vs
// row-major U storage (kernel-level memory locality).
func BenchmarkFig7TransposeU(b *testing.B) {
	a := Random(benchOrder, 16)
	for _, tr := range []bool{true, false} {
		name := "transposed"
		if !tr {
			name = "rowmajor"
		}
		b.Run(name, func(b *testing.B) {
			opts := benchOpts(8)
			opts.TransposeU = tr
			runPipeline(b, a, opts)
		})
	}
}

// BenchmarkFig8OursVsScaLAPACK runs both systems on the same input —
// Figure 8's comparison at laptop scale.
func BenchmarkFig8OursVsScaLAPACK(b *testing.B) {
	a := Random(benchOrder, 17)
	b.Run("mapreduce", func(b *testing.B) {
		runPipeline(b, a, benchOpts(8))
	})
	b.Run("scalapack", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := InvertScaLAPACK(a, ScaLAPACKConfig{Procs: 8, BlockSize: 32}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("local", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := InvertLocal(a); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSec74FailureRecovery measures the pipeline with injected task
// failures — the Section 7.4 fault-tolerance run.
func BenchmarkSec74FailureRecovery(b *testing.B) {
	a := Random(benchOrder, 18)
	opts := benchOpts(8)
	var failures int
	for i := 0; i < b.N; i++ {
		fs := dfs.New(opts.Nodes, dfs.DefaultReplication)
		cl := mapreduce.NewCluster(fs, opts.Nodes)
		var mu sync.Mutex
		seen := map[string]bool{}
		cl.InjectFailure = func(job string, task, attempt int, isMap bool) error {
			mu.Lock()
			defer mu.Unlock()
			key := fmt.Sprintf("%s/%d/%v", job, task, isMap)
			if attempt == 0 && task == 0 && !seen[key] {
				seen[key] = true
				return errors.New("injected")
			}
			return nil
		}
		p, err := core.NewPipelineOn(opts, fs, cl)
		if err != nil {
			b.Fatal(err)
		}
		inv, rep, err := p.Invert(a)
		if err != nil {
			b.Fatal(err)
		}
		failures = rep.TaskFailures
		if Residual(a, inv) > 1e-7 {
			b.Fatal("bad inverse after failure recovery")
		}
	}
	b.ReportMetric(float64(failures), "recoveredFailures")
}

// --- Kernel micro-benchmarks ---

// BenchmarkOrderScaling sweeps the matrix order at fixed cluster size,
// the n^3 law behind every Figure 6 curve.
func BenchmarkOrderScaling(b *testing.B) {
	for _, n := range []int{64, 128, 256, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			a := Random(n, int64(n))
			opts := benchOpts(8)
			for i := 0; i < b.N; i++ {
				if _, _, err := Invert(a, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkKernelMul(b *testing.B) {
	x := workload.Random(benchOrder, 20)
	y := workload.Random(benchOrder, 21)
	variants := []struct {
		name string
		fn   func() error
	}{
		{"ikj", func() error { _, err := matrix.Mul(x, y); return err }},
		{"naive-ijk", func() error { _, err := matrix.MulNaiveColumnOrder(x, y); return err }},
		{"transB", func() error { _, err := matrix.MulTransB(x, y.Transpose()); return err }},
		{"blocked", func() error { _, err := matrix.MulBlocked(x, y, 0); return err }},
		{"parallel", func() error { _, err := matrix.MulParallel(x, y); return err }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := v.fn(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkKernelLUDecompose(b *testing.B) {
	a := workload.Random(benchOrder, 22)
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := lu.Decompose(a); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("blocked", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := lu.DecomposeBlocked(a, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkKernelTriangularInverse(b *testing.B) {
	a := workload.DiagonallyDominant(benchOrder, 23)
	f, err := lu.Decompose(a)
	if err != nil {
		b.Fatal(err)
	}
	l := f.L()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lu.LowerInverse(l, true)
	}
}

func BenchmarkKernelInverters(b *testing.B) {
	a := workload.Random(128, 24)
	b.Run("lu", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lu.Invert(a); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gaussjordan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gaussjordan.Invert(a); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("qr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := qr.Invert(a); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cholesky-spd", func(b *testing.B) {
		spd := workload.SPD(128, 24)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cholesky.Invert(spd); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lu-spd", func(b *testing.B) {
		spd := workload.SPD(128, 24)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := lu.Invert(spd); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scalapack-4p", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := scalapack.Invert(a, scalapack.Config{Procs: 4, BlockSize: 16}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngines compares all execution engines on the same input: the
// HDFS-backed MapReduce pipeline, the Section 8 Spark-style engine, and
// both ScaLAPACK layouts.
func BenchmarkEngines(b *testing.B) {
	a := Random(benchOrder, 25)
	b.Run("mapreduce", func(b *testing.B) {
		runPipeline(b, a, benchOpts(8))
	})
	b.Run("spark", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := InvertSpark(a, 8, benchNB); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scalapack-1d", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := InvertScaLAPACK(a, ScaLAPACKConfig{Procs: 8, BlockSize: 32}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scalapack-2d", func(b *testing.B) {
		var st *scalapack.Stats
		for i := 0; i < b.N; i++ {
			var err error
			_, st, err = scalapack.Invert2D(a, scalapack.Grid2D{Procs: 8, BlockSize: 32})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(st.BytesTransferred), "bytesTransferred")
	})
}

// BenchmarkGridAblation1Dvs2D measures the communication advantage of the
// 2-D process grid the paper configures for ScaLAPACK (Section 7.5).
func BenchmarkGridAblation1Dvs2D(b *testing.B) {
	a := Random(128, 26)
	b.Run("1d-16p", func(b *testing.B) {
		var st *ScaLAPACKStats
		for i := 0; i < b.N; i++ {
			var err error
			_, st, err = InvertScaLAPACK(a, ScaLAPACKConfig{Procs: 16, BlockSize: 8})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(st.BytesTransferred), "bytesTransferred")
	})
	b.Run("2d-16p", func(b *testing.B) {
		var st *scalapack.Stats
		for i := 0; i < b.N; i++ {
			var err error
			_, st, err = scalapack.Invert2D(a, scalapack.Grid2D{Procs: 16, BlockSize: 8})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(st.BytesTransferred), "bytesTransferred")
	})
}

// BenchmarkMultiplyJob measures the standalone block-wrap multiplication
// job against its naive layout (Section 6.2 at the job level).
func BenchmarkMultiplyJob(b *testing.B) {
	x := Random(benchOrder, 29)
	y := Random(benchOrder, 30)
	for _, wrap := range []bool{true, false} {
		name := "blockwrap"
		if !wrap {
			name = "naive"
		}
		b.Run(name, func(b *testing.B) {
			opts := DefaultOptions(16)
			opts.BlockWrap = wrap
			var read int64
			for i := 0; i < b.N; i++ {
				p, err := core.NewPipeline(opts)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := p.Multiply(x, y); err != nil {
					b.Fatal(err)
				}
				read = p.FS.Stats().BytesRead
			}
			b.ReportMetric(float64(read), "bytesRead")
		})
	}
}

// BenchmarkSolveVsInvert compares solving k right-hand sides directly
// against forming the full inverse — the reason SolveDirect exists.
func BenchmarkSolveVsInvert(b *testing.B) {
	n, k := benchOrder, 4
	a := Random(n, 31)
	rhs := workload.RandomRect(n, k, 32)
	opts := benchOpts(8)
	b.Run("solve-direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SolveDirect(a, rhs, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("invert-then-multiply", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			inv, _, err := Invert(a, opts)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := matrix.Mul(inv, rhs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDeterminant times determinant extraction via the pipeline.
func BenchmarkDeterminant(b *testing.B) {
	a := Random(benchOrder, 27)
	opts := benchOpts(8)
	for i := 0; i < b.N; i++ {
		if _, err := Determinant(a, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRefine times one Newton-Schulz refinement sweep.
func BenchmarkRefine(b *testing.B) {
	a := workload.DiagonallyDominant(benchOrder, 28)
	inv, err := InvertLocal(a)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Refine(a, inv, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNBTuning times the Section 5 bound-value optimization sweep.
func BenchmarkNBTuning(b *testing.B) {
	c := costmodel.NewCluster(costmodel.Medium, 64)
	var nb int
	for i := 0; i < b.N; i++ {
		nb = costmodel.OptimalNB(c, 102400)
	}
	b.ReportMetric(float64(nb), "optimalNB")
}

// BenchmarkModelSeries times the paper-scale series generation (cheap; it
// exists so `-bench=.` exercises every artifact generator end to end).
func BenchmarkModelSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(costmodel.Fig6()) == 0 || len(costmodel.Fig7()) == 0 || len(costmodel.Fig8()) == 0 || len(costmodel.Sec74()) == 0 {
			b.Fatal("empty series")
		}
	}
}
