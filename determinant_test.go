package mrinverse

import (
	"math"
	"testing"
)

func TestDeterminantPipeline(t *testing.T) {
	opts := DefaultOptions(4)
	opts.NB = 16

	// Known determinant: diagonal matrix.
	d := NewMatrix(48, 48)
	want := 1.0
	for i := 0; i < 48; i++ {
		v := 1 + 0.1*float64(i%7) - 0.3*float64(i%2)
		d.Set(i, i, v)
		want *= v
	}
	got, err := Determinant(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Fatalf("det = %g, want %g", got, want)
	}
}

func TestDeterminantMatchesLocal(t *testing.T) {
	a := Random(40, 31)
	opts := DefaultOptions(4)
	opts.NB = 12
	got, err := Determinant(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Local reference via the single-node factorization.
	p, l, u, err := Decompose(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	_ = l
	ref := float64(p.Sign())
	for i := 0; i < u.Rows; i++ {
		ref *= u.At(i, i)
	}
	if math.Abs(got-ref) > 1e-9*math.Abs(ref) {
		t.Fatalf("det = %g vs %g", got, ref)
	}
	// And det(A)·det(A^-1) = 1.
	inv, _, err := Invert(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	detInv, err := Determinant(inv, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got*detInv-1) > 1e-6 {
		t.Fatalf("det(A)*det(A^-1) = %g", got*detInv)
	}
}

func TestDeterminantSwapSign(t *testing.T) {
	// A row-swapped identity has determinant -1. The swap stays inside
	// the first leaf block (order nb=8) so every diagonal block the
	// recursion factors remains nonsingular — the documented limitation
	// of block-local pivoting.
	a := Identity(32)
	r0, r1 := a.Row(1), a.Row(3)
	for k := range r0 {
		r0[k], r1[k] = r1[k], r0[k]
	}
	opts := DefaultOptions(2)
	opts.NB = 8
	got, err := Determinant(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got+1) > 1e-12 {
		t.Fatalf("det = %g, want -1", got)
	}
}

func TestRefinePublicAPI(t *testing.T) {
	a := DiagonallyDominant(36, 32)
	opts := DefaultOptions(4)
	opts.NB = 12
	inv, _, err := Invert(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Degrade then refine.
	inv.Apply(func(i, j int, v float64) float64 { return v * (1 + 1e-5) })
	refined, res, err := Refine(a, inv, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-10 {
		t.Fatalf("refined residual %g", res)
	}
	if r := Residual(a, refined); r > 1e-10 {
		t.Fatalf("recomputed residual %g", r)
	}
}
