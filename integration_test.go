package mrinverse

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/scalapack"
)

// TestAllEnginesAgreeOnOneInput is the cross-engine integration test: the
// MapReduce pipeline, the Spark-style engine, the single-node kernel, and
// both ScaLAPACK layouts invert the same matrix and must agree to
// round-off.
func TestAllEnginesAgreeOnOneInput(t *testing.T) {
	n := 96
	a := Random(n, 41)
	ref, err := InvertLocal(a)
	if err != nil {
		t.Fatal(err)
	}

	opts := DefaultOptions(4)
	opts.NB = 24
	mr, rep, err := Invert(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.JobsRun != PipelineJobs(n, opts.NB) {
		t.Fatalf("jobs = %d", rep.JobsRun)
	}

	sp, err := InvertSpark(a, 4, 24)
	if err != nil {
		t.Fatal(err)
	}

	s1, _, err := InvertScaLAPACK(a, ScaLAPACKConfig{Procs: 4, BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}

	s2, _, err := scalapack.Invert2D(a, scalapack.Grid2D{Procs: 4, BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}

	for name, inv := range map[string]*Matrix{
		"mapreduce": mr, "spark": sp, "scalapack-1d": s1, "scalapack-2d": s2,
	} {
		var worst float64
		for i := range ref.Data {
			if d := math.Abs(inv.Data[i] - ref.Data[i]); d > worst {
				worst = d
			}
		}
		if worst > 1e-7 {
			t.Errorf("%s differs from local reference by %g", name, worst)
		}
		if r := Residual(a, inv); r > 1e-7 {
			t.Errorf("%s residual %g", name, r)
		}
	}
}

// TestLargePipeline runs a depth-3, 1024-order inversion end to end —
// the largest configuration in the suite.
func TestLargePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	n := 1024
	a := Random(n, 42)
	opts := DefaultOptions(8)
	opts.NB = 256
	inv, rep, err := Invert(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Depth != 2 || rep.JobsRun != PipelineJobs(n, 256) {
		t.Fatalf("depth %d, jobs %d", rep.Depth, rep.JobsRun)
	}
	if r := Residual(a, inv); r > 1e-6 {
		t.Fatalf("residual %g", r)
	}
}

// TestHilbertThroughPipeline pushes an ill-conditioned input through the
// distributed pipeline: accuracy degrades with kappa exactly as the
// single-node kernel's does, no worse.
func TestHilbertThroughPipeline(t *testing.T) {
	h := NewMatrix(8, 8)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			h.Set(i, j, 1/float64(i+j+1))
		}
	}
	opts := DefaultOptions(2)
	opts.NB = 4
	mrInv, _, err := Invert(h, opts)
	if err != nil {
		t.Fatal(err)
	}
	localInv, err := InvertLocal(h)
	if err != nil {
		t.Fatal(err)
	}
	mrRes := Residual(h, mrInv)
	localRes := Residual(h, localInv)
	// Both residuals are far above machine epsilon (kappa ~ 1e10) but the
	// pipeline must stay within two orders of the local kernel.
	if mrRes > localRes*100+1e-8 {
		t.Fatalf("pipeline residual %g vs local %g", mrRes, localRes)
	}
}

// TestQuickPipelineRandomConfigs is the property-based end-to-end check:
// for random orders, node counts, and bound values, the pipeline inverse
// satisfies the Section 7.2 criterion and the job-count law.
func TestQuickPipelineRandomConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64, nRaw, nodesRaw, nbRaw uint8) bool {
		n := int(nRaw%48) + 16
		nodes := int(nodesRaw%6)*2 + 2 // 2..12
		nb := int(nbRaw%24) + 8        // 8..31
		a := DiagonallyDominant(n, seed)
		opts := DefaultOptions(nodes)
		opts.NB = nb
		inv, rep, err := Invert(a, opts)
		if err != nil {
			return false
		}
		if rep.JobsRun != PipelineJobs(n, nb) {
			return false
		}
		return Residual(a, inv) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSparkMatchesPipeline cross-checks the two engines on random
// configurations.
func TestQuickSparkMatchesPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 12
		a := DiagonallyDominant(n, seed)
		opts := DefaultOptions(4)
		opts.NB = 10
		mr, _, err := Invert(a, opts)
		if err != nil {
			return false
		}
		sp, err := InvertSpark(a, 4, 10)
		if err != nil {
			return false
		}
		for i := range mr.Data {
			if math.Abs(mr.Data[i]-sp.Data[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
