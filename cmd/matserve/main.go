// matserve exposes the MapReduce inversion pipeline as an HTTP service.
// With -shards 1 (the default) it is a single serving instance: many
// concurrent clients multiplexed onto one simulated cluster, with bounded
// admission (429 on overflow), singleflight deduplication of identical
// in-flight matrices, an LRU cache of computed inverses, per-request
// deadlines, and graceful drain on SIGINT/SIGTERM.
//
// With -shards N it becomes a federated fleet: N independent cluster
// shards (each with its own slot scheduler, singleflight, and cache)
// behind a consistent-hash ring keyed by the request digest, so identical
// matrices always land on the same shard and stay cache-local. Tenants
// (X-Tenant header) get per-tenant admission quotas and QoS priorities
// via -tenants-quota, and requests whose home shard saturates spill to
// the least-loaded live shard instead of bouncing with 429.
//
//	matserve -addr :8723 -nodes 8 -nb 64 -concurrency 4 -queue 32 -cache-mb 64
//	matserve -shards 4 -tenants-quota 'gold=32:5,free=8:0,*=4:0'
//
// Concurrent pipelines within a shard share one cluster-wide slot
// scheduler (total executing task attempts never exceed -nodes);
// -max-jobs and -slot-quota bound a single request's share of it.
//
//	POST /invert    binary matrix body -> binary inverse
//	                query: timeout=250ms  nodes=8  nb=64  priority=5
//	                header: X-Tenant: gold
//	                header: X-Base-Digest: <digest>  (-incr: hint naming
//	                the cached base matrix this one is a row-mutation of;
//	                the response's X-Serve-Source says how it was served)
//	POST /lstsq     tall matrix A + right-hand side b (binary,
//	                concatenated) -> least-squares solution via the
//	                MapReduce TSQR pipeline (or the sequential QR kernel
//	                when the cost model prefers it)
//	POST /pinv      tall matrix A (binary) -> pseudo-inverse A^+
//	GET  /healthz /statz /metricz
//
// Clients: cmd/loadgen drives it (fleet mode: -shards, -tenant-mix); or
// curl:
//
//	matgen -n 64 -o a.bin && curl --data-binary @a.bin localhost:8723/invert -o inv.bin
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fed"
	"repro/internal/incr"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8723", "listen address")
	shards := flag.Int("shards", 1, "independent cluster shards behind the consistent-hash router")
	vnodes := flag.Int("vnodes", fed.DefaultVNodes, "ring virtual nodes per shard")
	route := flag.String("route", fed.RouteDigest, "placement policy: digest (cache-local) | random (baseline)")
	tenantsQuota := flag.String("tenants-quota", "", "tenant admission table: name=quota[:priority],... ('*' is the default class; empty admits everyone unlimited)")
	nodes := flag.Int("nodes", 8, "simulated cluster nodes (m0) per shard")
	nb := flag.Int("nb", 64, "bound value for the pipeline")
	concurrency := flag.Int("concurrency", 2, "pipelines executed at once per shard")
	queue := flag.Int("queue", 16, "admission queue depth per shard (excess requests get 429)")
	cacheMB := flag.Int64("cache-mb", 64, "inverse result cache budget in MiB per shard (0 disables)")
	maxJobs := flag.Int("max-jobs", 0, "cap on MapReduce jobs holding cluster slots at once (0 = unlimited)")
	slotQuota := flag.Int("slot-quota", 0, "cap on slots one job may hold while others wait (0 = unlimited)")
	incrEnable := flag.Bool("incr", false, "enable the incremental (Sherman–Morrison–Woodbury) inversion path: cache misses a rank-k row delta from an indexed base inverse are served as O(kn²) updates")
	incrKMax := flag.Int("incr-kmax", 0, "max delta rank served incrementally (0 = default)")
	incrBases := flag.Int("incr-bases", 0, "base-inverse index entries per shard (0 = default)")
	timeout := flag.Duration("timeout", 0, "default per-request deadline when the client sets none (0 = unlimited)")
	drainGrace := flag.Duration("drain", 10*time.Second, "graceful drain budget on shutdown")
	showMetrics := flag.Bool("metrics", false, "print the fleet metrics registry after drain")
	flag.Parse()

	tenants, err := fed.ParseTenants(*tenantsQuota)
	if err != nil {
		log.Fatal(err)
	}
	opts := core.DefaultOptions(*nodes)
	opts.NB = *nb
	fleet, err := fed.New(fed.Config{
		Shards:  *shards,
		VNodes:  *vnodes,
		Route:   *route,
		Tenants: tenants,
		Shard: serve.Config{
			Concurrency:       *concurrency,
			QueueDepth:        *queue,
			CacheBytes:        *cacheMB << 20,
			DefaultTimeout:    *timeout,
			MaxConcurrentJobs: *maxJobs,
			SlotQuota:         *slotQuota,
			Opts:              opts,
			Incr:              incr.Config{Enabled: *incrEnable, KMax: *incrKMax, MaxBases: *incrBases},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	hs := &http.Server{Addr: *addr, Handler: fed.NewHandler(fleet)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		log.Printf("draining %d shard(s) (grace %v)...", fleet.NumShards(), *drainGrace)
		ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
		defer cancel()
		if derr := fleet.Drain(ctx); derr != nil {
			log.Printf("drain: %v", derr)
		}
		// A full-grace Drain exhausts ctx; give the HTTP listener its own
		// short window so in-flight responses can still flush instead of
		// being force-closed immediately.
		sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer scancel()
		hs.Shutdown(sctx)
	}()

	log.Printf("matserve listening on %s (shards=%d route=%s nodes=%d nb=%d concurrency=%d queue=%d cache=%dMiB)",
		*addr, *shards, *route, *nodes, *nb, *concurrency, *queue, *cacheMB)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
	if *showMetrics {
		fmt.Print(fleet.Metrics().String())
		for i := 0; i < fleet.NumShards(); i++ {
			fmt.Printf("\n# shard %d\n%s", i, fleet.Shard(i).Metrics().String())
		}
	}
}
