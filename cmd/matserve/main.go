// matserve exposes the MapReduce inversion pipeline as an HTTP service:
// many concurrent clients multiplexed onto one simulated cluster, with
// bounded admission (429 on overflow), singleflight deduplication of
// identical in-flight matrices, an LRU cache of computed inverses,
// per-request deadlines, and graceful drain on SIGINT/SIGTERM.
//
//	matserve -addr :8723 -nodes 8 -nb 64 -concurrency 4 -queue 32 -cache-mb 64
//
// Concurrent pipelines share one cluster-wide slot scheduler (total
// executing task attempts never exceed -nodes); -max-jobs and
// -slot-quota bound a single request's share of it.
//
//	POST /invert    binary matrix body -> binary inverse
//	                query: timeout=250ms  nodes=8  nb=64  priority=5
//	GET  /healthz /statz /metricz
//
// Clients: cmd/loadgen drives it; or curl:
//
//	matgen -n 64 -o a.bin && curl --data-binary @a.bin localhost:8723/invert -o inv.bin
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8723", "listen address")
	nodes := flag.Int("nodes", 8, "simulated cluster nodes (m0)")
	nb := flag.Int("nb", 64, "bound value for the pipeline")
	concurrency := flag.Int("concurrency", 2, "pipelines executed at once")
	queue := flag.Int("queue", 16, "admission queue depth (excess requests get 429)")
	cacheMB := flag.Int64("cache-mb", 64, "inverse result cache budget in MiB (0 disables)")
	maxJobs := flag.Int("max-jobs", 0, "cap on MapReduce jobs holding cluster slots at once (0 = unlimited)")
	slotQuota := flag.Int("slot-quota", 0, "cap on slots one job may hold while others wait (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "default per-request deadline when the client sets none (0 = unlimited)")
	drainGrace := flag.Duration("drain", 10*time.Second, "graceful drain budget on shutdown")
	showMetrics := flag.Bool("metrics", false, "print the metrics registry after drain")
	flag.Parse()

	opts := core.DefaultOptions(*nodes)
	opts.NB = *nb
	srv, err := serve.New(serve.Config{
		Concurrency:       *concurrency,
		QueueDepth:        *queue,
		CacheBytes:        *cacheMB << 20,
		DefaultTimeout:    *timeout,
		MaxConcurrentJobs: *maxJobs,
		SlotQuota:         *slotQuota,
		Opts:              opts,
	})
	if err != nil {
		log.Fatal(err)
	}

	hs := &http.Server{Addr: *addr, Handler: serve.NewHandler(srv)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		log.Printf("draining (grace %v)...", *drainGrace)
		ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
		defer cancel()
		if derr := srv.Drain(ctx); derr != nil {
			log.Printf("drain: %v", derr)
		}
		// A full-grace Drain exhausts ctx; give the HTTP listener its own
		// short window so in-flight responses can still flush instead of
		// being force-closed immediately.
		sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer scancel()
		hs.Shutdown(sctx)
	}()

	log.Printf("matserve listening on %s (nodes=%d nb=%d concurrency=%d queue=%d cache=%dMiB)",
		*addr, *nodes, *nb, *concurrency, *queue, *cacheMB)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
	if *showMetrics {
		fmt.Print(srv.Metrics().String())
	}
}
