// mrbench regenerates every table and figure of the paper's evaluation
// (Section 7). For each artifact it prints the paper-scale series from the
// calibrated cost model; with -measure it additionally runs real
// reduced-scale executions of the pipeline (and the ScaLAPACK baseline)
// on this machine to validate the shapes.
//
//	mrbench -exp all
//	mrbench -exp fig6 -measure
//	mrbench -exp sec74
//	mrbench -exp fig6 -json            # machine-readable output
//	mrbench -trace run.json -metrics   # instrumented run at -n/-nb
//
// Experiments: table1 table2 table3 fig6 fig7 fig8 sec74 acc all
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	mrinverse "repro"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/dfs"
	"repro/internal/incr"
	"repro/internal/mapreduce"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/workload"
)

var allExperiments = []string{"table1", "table2", "table3", "fig6", "fig7", "fig8", "sec74", "acc", "nb", "engines", "spark", "multiround", "incr"}

// seedBase offsets every measurement matrix's RNG seed; the -seed flag
// makes measured runs reproducible (same seed, same matrices) without
// collapsing the distinct per-experiment inputs.
var seedBase int64 = 1

func main() {
	exp := flag.String("exp", "all", "experiment id: table1|table2|table3|fig6|fig7|fig8|sec74|acc|nb|engines|spark|multiround|incr|all")
	measure := flag.Bool("measure", false, "also run real reduced-scale measurements")
	n := flag.Int("n", 384, "matrix order for -measure runs")
	nb := flag.Int("nb", 64, "bound value for -measure runs")
	seed := flag.Int64("seed", 1, "base RNG seed for measurement matrices: same seed, same matrices")
	jsonOut := flag.Bool("json", false, "emit one machine-readable JSON object per experiment instead of text")
	traceOut := flag.String("trace", "", "run one instrumented inversion at -n/-nb and write a Chrome trace-event JSON file")
	showMetrics := flag.Bool("metrics", false, "run one instrumented inversion at -n/-nb and print the metrics registry")
	killNodes := flag.Int("kill-nodes", 0, "run the measured §7.4 failure-recovery slowdown curve for 0..k killed nodes at -n/-nb")
	flag.Parse()
	seedBase = *seed

	if *traceOut != "" || *showMetrics {
		observedRun(*traceOut, *showMetrics, *n, *nb)
		return
	}

	if *killNodes > 0 {
		failureRecovery(*killNodes, *n, *nb, *jsonOut)
		return
	}

	if *jsonOut {
		emitJSON(*exp, *measure, *n, *nb)
		return
	}

	run := map[string]func(bool, int, int){
		"table1": table1, "table2": table2, "table3": table3,
		"fig6": fig6, "fig7": fig7, "fig8": fig8,
		"sec74": sec74, "acc": acc,
		"nb": nbTune, "engines": engines, "spark": sparkExp,
		"multiround": multiRound, "incr": incrExp,
	}
	if *exp == "all" {
		for _, id := range allExperiments {
			run[id](*measure, *n, *nb)
			fmt.Println()
		}
		return
	}
	f, ok := run[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	f(*measure, *n, *nb)
}

// observedRun performs one traced + metered pipeline inversion and writes
// the requested artifacts.
func observedRun(traceOut string, showMetrics bool, n, nb int) {
	var tracer *obs.Tracer
	var metrics *obs.Registry
	if traceOut != "" {
		tracer = obs.New()
	}
	if showMetrics {
		metrics = obs.NewRegistry()
	}
	a := mrinverse.Random(n, seedBase)
	opts := mrinverse.DefaultOptions(8)
	opts.NB = nb
	inv, rep, err := mrinverse.InvertObserved(a, opts, tracer, metrics)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inverted n=%d nb=%d in %v over %d jobs; residual %.2g\n",
		n, nb, rep.Elapsed.Round(time.Millisecond), rep.JobsRun, mrinverse.Residual(a, inv))
	if tracer != nil {
		spans := tracer.Snapshot()
		f, ferr := os.Create(traceOut)
		if ferr != nil {
			log.Fatal(ferr)
		}
		if werr := obs.WriteChromeTrace(f, spans); werr != nil {
			log.Fatal(werr)
		}
		if cerr := f.Close(); cerr != nil {
			log.Fatal(cerr)
		}
		fmt.Printf("wrote %d spans to %s (open in chrome://tracing or ui.perfetto.dev)\n", len(spans), traceOut)
		fmt.Print(obs.SummarizeString(spans))
		if root := obs.Root(spans); root != nil {
			if cp, cerr := obs.ComputeCriticalPath(spans, root.ID); cerr == nil {
				fmt.Print(cp.String())
			}
		}
	}
	if metrics != nil {
		fmt.Print(metrics.String())
	}
}

// failureRecovery measures the paper's §7.4 failure-recovery slowdown on
// this machine: for each kill count 0..k it inverts the same seeded matrix
// fault-free and under a seeded chaos schedule, reporting the slowdown and
// asserting the inverse bit-identical. JSON output is one object, shaped
// like the other experiments' JSONL lines so it can append to a bench
// report.
func failureRecovery(k, n, nb int, jsonOut bool) {
	kills := make([]int, k+1)
	for i := range kills {
		kills[i] = i
	}
	curve, err := chaos.SlowdownCurve(chaos.ExperimentConfig{
		N: n, NB: nb, Nodes: 8, Seed: seedBase, Restart: true, FetchFailEvery: 3,
	}, kills)
	if err != nil {
		log.Fatal(err)
	}
	if jsonOut {
		type point struct {
			Kills             int     `json:"kills"`
			BaselineMs        float64 `json:"baseline_ms"`
			FaultyMs          float64 `json:"faulty_ms"`
			Slowdown          float64 `json:"slowdown"`
			TaskFailures      int     `json:"task_failures"`
			LostMapOutputs    int     `json:"lost_map_outputs"`
			SpeculativeTasks  int     `json:"speculative_tasks"`
			BytesReReplicated int64   `json:"bytes_rereplicated"`
			Identical         bool    `json:"identical"`
		}
		pts := make([]point, len(curve))
		for i, r := range curve {
			pts[i] = point{
				Kills:             r.Config.Kill,
				BaselineMs:        r.Baseline.ElapsedMs,
				FaultyMs:          r.Faulty.ElapsedMs,
				Slowdown:          r.Slowdown,
				TaskFailures:      r.Faulty.TaskFailures,
				LostMapOutputs:    r.Faulty.LostMapOutputs,
				SpeculativeTasks:  r.Faulty.SpeculativeTasks,
				BytesReReplicated: r.Chaos.BytesReReplicated,
				Identical:         r.Identical,
			}
		}
		if err := json.NewEncoder(os.Stdout).Encode(map[string]any{
			"experiment": "sec74_failure_recovery",
			"data":       map[string]any{"n": n, "nb": nb, "nodes": 8, "seed": seedBase, "points": pts},
		}); err != nil {
			log.Fatal(err)
		}
		return
	}
	header(fmt.Sprintf("Section 7.4: measured failure recovery (n=%d, nb=%d, 8 nodes)", n, nb))
	fmt.Printf("%-6s %-12s %-12s %-9s %-9s %-6s %s\n",
		"kills", "baseline", "faulty", "slowdown", "failures", "spec", "identical")
	for _, r := range curve {
		fmt.Printf("%-6d %-12.1f %-12.1f %-9.2f %-9d %-6d %v\n",
			r.Config.Kill, r.Baseline.ElapsedMs, r.Faulty.ElapsedMs, r.Slowdown,
			r.Faulty.TaskFailures, r.Faulty.SpeculativeTasks, r.Identical)
		if !r.Identical {
			log.Fatalf("kills=%d: inverse under chaos differs from the fault-free run", r.Config.Kill)
		}
	}
}

// emitJSON writes one JSON object per experiment id to stdout — the
// machine-readable twin of the text reports, built from the cost model's
// structured series (and real runs for the execution-backed experiments).
func emitJSON(exp string, measure bool, n, nb int) {
	ids := []string{exp}
	if exp == "all" {
		ids = allExperiments
	}
	enc := json.NewEncoder(os.Stdout)
	for _, id := range ids {
		payload, err := jsonPayload(id, measure, n, nb)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := enc.Encode(map[string]any{"experiment": id, "data": payload}); err != nil {
			log.Fatal(err)
		}
	}
}

func jsonPayload(id string, measure bool, n, nb int) (any, error) {
	_, _, _ = measure, n, nb // JSON payloads use the fixed paper-scale configs
	switch id {
	case "table1":
		return costmodel.Table1Rows(20480, 64), nil
	case "table2":
		return costmodel.Table2Rows(20480, 64), nil
	case "table3":
		return costmodel.Table3Rows(), nil
	case "fig6":
		return costmodel.Fig6(), nil
	case "fig7":
		return costmodel.Fig7(), nil
	case "fig8":
		return costmodel.Fig8(), nil
	case "sec74":
		return costmodel.Sec74(), nil
	case "acc":
		type accRow struct {
			N        int     `json:"n"`
			Residual float64 `json:"residual"`
			Pass     bool    `json:"pass"`
		}
		var rows []accRow
		for _, order := range []int{64, 128, 256} {
			a := mrinverse.Random(order, int64(order))
			opts := mrinverse.DefaultOptions(4)
			opts.NB = maxInt(16, order/8)
			inv, _, err := mrinverse.Invert(a, opts)
			if err != nil {
				return nil, fmt.Errorf("acc n=%d: %w", order, err)
			}
			res := mrinverse.Residual(a, inv)
			rows = append(rows, accRow{N: order, Residual: res, Pass: res <= 1e-5})
		}
		return rows, nil
	case "nb":
		type nbRow struct {
			NB              int     `json:"nb"`
			PipelineSeconds float64 `json:"pipeline_seconds"`
			Jobs            int     `json:"jobs"`
		}
		c := costmodel.NewCluster(costmodel.Medium, 64)
		order := 102400
		var rows []nbRow
		for cand := 400; cand <= 25600; cand *= 2 {
			t := costmodel.OursTime(c, order, cand, costmodel.AllOpts)
			rows = append(rows, nbRow{NB: cand, PipelineSeconds: t.Seconds(), Jobs: mrinverse.PipelineJobs(order, cand)})
		}
		return map[string]any{"rows": rows, "optimal_nb": costmodel.OptimalNB(c, order)}, nil
	case "engines":
		type engRow struct {
			Order  int    `json:"order"`
			Engine string `json:"engine"`
			Reason string `json:"reason"`
		}
		var rows []engRow
		c := costmodel.NewCluster(costmodel.Medium, 64)
		for _, order := range []int{800, 20480, 102400} {
			choice := costmodel.ChooseEngine(c, order, workload.PaperNB)
			rows = append(rows, engRow{Order: order, Engine: string(choice.Engine), Reason: choice.Reason})
		}
		return rows, nil
	case "spark":
		a := mrinverse.Random(256, seedBase+5)
		start := time.Now()
		sparkInv, err := mrinverse.InvertSpark(a, 4, 64)
		if err != nil {
			return nil, err
		}
		sparkSec := time.Since(start).Seconds()
		opts := mrinverse.DefaultOptions(4)
		opts.NB = 64
		start = time.Now()
		_, rep, err := mrinverse.Invert(a, opts)
		if err != nil {
			return nil, err
		}
		return map[string]any{
			"n":                    256,
			"spark_seconds":        sparkSec,
			"mapreduce_seconds":    time.Since(start).Seconds(),
			"mapreduce_bytes_read": rep.FS.BytesRead,
			"spark_residual":       mrinverse.Residual(a, sparkInv),
		}, nil
	case "multiround":
		rows, err := multiRoundRows(256, 16)
		if err != nil {
			return nil, err
		}
		choice := costmodel.ChooseMultiply(costmodel.NewCluster(costmodel.Medium, 64), 102400, 102400, 102400, 0)
		return map[string]any{
			"n":     256,
			"nodes": 16,
			"rows":  rows,
			"paper_scale_choice": map[string]any{
				"n": 102400, "nodes": 64,
				"strategy": string(choice.Strategy), "rho": choice.Rho, "reason": choice.Reason,
			},
		}, nil
	case "incr":
		rows, err := incrRows(256, 8)
		if err != nil {
			return nil, err
		}
		return map[string]any{"n": 256, "nodes": 8, "rows": rows}, nil
	default:
		return nil, fmt.Errorf("unknown experiment %q", id)
	}
}

// incrRow is one measured update-vs-full comparison: a rank-k row
// mutation of a seeded order-n base served by the Sherman–Morrison–
// Woodbury update against rerunning the full inversion pipeline.
type incrRow struct {
	N          int     `json:"n"`
	K          int     `json:"k"`
	Strategy   string  `json:"strategy"` // cost-model pick for this (n, k)
	UpdateMs   float64 `json:"update_ms"`
	FullMs     float64 `json:"full_ms"`
	Speedup    float64 `json:"speedup"`
	Residual   float64 `json:"residual"`
	UpdateWins bool    `json:"update_wins"`
}

// incrRows measures the incremental-inversion speedup backing the CI
// gate: one pipeline inversion of the base, then for each delta rank the
// SMW update of the cached inverse against a fresh full-pipeline
// inversion of the mutated matrix, with the update's sampled residual
// recorded so a fast-but-wrong row can never pass.
func incrRows(n, nodes int) ([]incrRow, error) {
	base := workload.DiagonallyDominant(n, seedBase+21)
	opts := mrinverse.DefaultOptions(nodes)
	opts.NB = 64
	ainv, _, err := mrinverse.Invert(base, opts)
	if err != nil {
		return nil, fmt.Errorf("incr base inversion: %w", err)
	}
	var rows []incrRow
	for _, k := range []int{1, 4, 8, 32} {
		mutSeed := seedBase + int64(100+k)
		mut := workload.MutateRows(base, k, mutSeed)
		start := time.Now()
		if _, _, err := mrinverse.Invert(mut, opts); err != nil {
			return nil, fmt.Errorf("incr full inversion k=%d: %w", k, err)
		}
		fullMs := float64(time.Since(start).Microseconds()) / 1000

		u, v := incr.RowDelta(base, mut, workload.MutatedRows(n, k, mutSeed))
		choice := costmodel.ChooseUpdate(costmodel.ServingCluster(nodes), n, k, opts.NB, 0)
		var x *matrix.Dense
		start = time.Now()
		if choice.Strategy == costmodel.UpdateDistributed {
			fs := dfs.New(nodes, dfs.DefaultReplication)
			eng := &incr.Engine{FS: fs, Cluster: mapreduce.NewCluster(fs, nodes)}
			x, _, err = eng.UpdateCtx(context.Background(), ainv, u, v, 0, opts)
		} else {
			x, err = incr.Update(ainv, u, v, 0)
		}
		if err != nil {
			return nil, fmt.Errorf("incr update k=%d: %w", k, err)
		}
		updateMs := float64(time.Since(start).Microseconds()) / 1000
		rows = append(rows, incrRow{
			N: n, K: k, Strategy: string(choice.Strategy),
			UpdateMs: updateMs, FullMs: fullMs,
			Speedup:    fullMs / updateMs,
			Residual:   incr.SampledResidual(mut, x, incr.DefaultSampleCols),
			UpdateWins: updateMs < fullMs,
		})
	}
	return rows, nil
}

func incrExp(measure bool, n, nb int) {
	_ = measure
	header("Incremental inversion: measured SMW update vs full pipeline (n=256, 8 nodes)")
	rows, err := incrRows(256, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%4s %4s %-12s %10s %10s %8s %10s %6s\n",
		"n", "k", "strategy", "update", "full", "speedup", "residual", "wins")
	for _, r := range rows {
		fmt.Printf("%4d %4d %-12s %8.2fms %8.2fms %7.1fx %10.2g %6v\n",
			r.N, r.K, r.Strategy, r.UpdateMs, r.FullMs, r.Speedup, r.Residual, r.UpdateWins)
	}
	fmt.Println("the update path is O(kn²) against the pipeline's O(n³): at k ≪ n the")
	fmt.Println("cached base inverse turns a reinversion into a few thin multiplies.")
}

// multiRoundRow is one measured multiply-strategy execution on the gated
// M-suite shape (order M5/64 on 16 nodes).
type multiRoundRow struct {
	Strategy         string  `json:"strategy"`
	Rho              int     `json:"rho"`
	Grid             [2]int  `json:"grid"`
	Jobs             int     `json:"jobs"`
	TransferredBytes int64   `json:"transferred_bytes"`
	BytesRead        int64   `json:"bytes_read"`
	ShuffledKVs      int     `json:"shuffled_kvs"`
	MaxAbsDiff       float64 `json:"max_abs_diff"`
	BeatsSingle      bool    `json:"beats_single"`
}

// multiRoundRows measures every multiply strategy on one seeded n x n
// product: the fig7-style communication comparison backing the CI
// transfer gate, with exactness checked against the in-process product.
func multiRoundRows(n, nodes int) ([]multiRoundRow, error) {
	a := workload.Random(n, seedBase+11)
	b := workload.Random(n, seedBase+12)
	exact, err := matrix.Mul(a, b)
	if err != nil {
		return nil, err
	}
	var rows []multiRoundRow
	var single int64
	for _, strategy := range []core.MultiplyStrategy{
		core.MultiplySingleRound, core.MultiplyReplicated, core.MultiplySpaceRound,
	} {
		opts := core.DefaultOptions(nodes)
		opts.Multiply = strategy
		p, err := core.NewPipeline(opts)
		if err != nil {
			return nil, err
		}
		out, rep, err := p.MultiplyWithReport(a, b)
		if err != nil {
			return nil, fmt.Errorf("multiround %s: %w", strategy, err)
		}
		if strategy == core.MultiplySingleRound {
			single = rep.TransferredBytes
		}
		rows = append(rows, multiRoundRow{
			Strategy:         string(rep.Strategy),
			Rho:              rep.Rho,
			Grid:             rep.Grid,
			Jobs:             rep.Jobs,
			TransferredBytes: rep.TransferredBytes,
			BytesRead:        rep.BytesRead,
			ShuffledKVs:      rep.ShuffledKVs,
			MaxAbsDiff:       matrix.MaxAbsDiff(out, exact),
			BeatsSingle:      strategy != core.MultiplySingleRound && rep.TransferredBytes < single,
		})
	}
	return rows, nil
}

func multiRound(measure bool, n, nb int) {
	header("Multi-round multiplication: measured shuffle bytes per strategy (n=256, 16 nodes)")
	rows, err := multiRoundRows(256, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %4s %-8s %5s %16s %14s %12s %6s\n",
		"strategy", "rho", "grid", "jobs", "transferred", "read", "maxdiff", "wins")
	for _, r := range rows {
		fmt.Printf("%-14s %4d %-8s %5d %16d %14d %12.2g %6v\n",
			r.Strategy, r.Rho, fmt.Sprintf("%dx%d", r.Grid[0], r.Grid[1]),
			r.Jobs, r.TransferredBytes, r.BytesRead, r.MaxAbsDiff, r.BeatsSingle)
	}
	choice := costmodel.ChooseMultiply(costmodel.NewCluster(costmodel.Medium, 64), 102400, 102400, 102400, 0)
	fmt.Printf("paper scale (n=102400, 64 nodes): ChooseMultiply -> %s rho=%d\n  %s\n",
		choice.Strategy, choice.Rho, choice.Reason)
}

func header(s string) { fmt.Printf("=== %s ===\n", s) }

func table1(bool, int, int) {
	header("Table 1: LU decomposition complexity (n=20480, m0=64)")
	for _, row := range costmodel.Table1Rows(20480, 64) {
		fmt.Println(row)
	}
}

func table2(bool, int, int) {
	header("Table 2: triangular inversion + final multiply complexity (n=20480, m0=64)")
	for _, row := range costmodel.Table2Rows(20480, 64) {
		fmt.Println(row)
	}
}

func table3(bool, int, int) {
	header("Table 3: evaluation matrices and job counts (nb=3200)")
	for _, row := range costmodel.Table3Rows() {
		fmt.Println(row)
	}
}

func fig6(measure bool, n, nb int) {
	header("Figure 6: strong scalability (model, paper scale, medium instances)")
	fmt.Print(costmodel.SummarizeFig6(costmodel.Fig6()))
	if !measure {
		return
	}
	fmt.Printf("--- measured on this machine: n=%d, nb=%d ---\n", n, nb)
	a := mrinverse.Random(n, seedBase)
	var t1 time.Duration
	for _, nodes := range []int{2, 4, 8, 16} {
		opts := mrinverse.DefaultOptions(nodes)
		opts.NB = nb
		start := time.Now()
		inv, rep, err := mrinverse.Invert(a, opts)
		if err != nil {
			log.Fatalf("nodes=%d: %v", nodes, err)
		}
		el := time.Since(start)
		if nodes == 2 {
			t1 = el
		}
		fmt.Printf("nodes=%2d  time=%-12v jobs=%-3d speedup-vs-2=%.2f  residual=%.2g\n",
			nodes, el.Round(time.Millisecond), rep.JobsRun,
			t1.Seconds()/el.Seconds(), mrinverse.Residual(a, inv))
	}
	fmt.Println("note: simulated task slots share this machine's cores, so wall-clock")
	fmt.Println("speedup saturates at the physical core count; see FS byte accounting")
	fmt.Println("and the cost model for the paper-scale scaling behaviour.")
}

func fig7(measure bool, n, nb int) {
	header("Figure 7: optimization ablations on M5 (model, paper scale)")
	fmt.Printf("%-16s %6s %8s\n", "optimization", "nodes", "ratio")
	for _, p := range costmodel.Fig7() {
		fmt.Printf("%-16s %6d %8.3f\n", p.Optimization, p.Nodes, p.Ratio)
	}
	if !measure {
		return
	}
	fmt.Printf("--- measured I/O on this machine: n=%d, nb=%d, 16 nodes ---\n", n, nb)
	a := mrinverse.Random(n, seedBase+1)
	type variant struct {
		name string
		mod  func(*mrinverse.Options)
	}
	base := func(nodes int) mrinverse.Options {
		o := mrinverse.DefaultOptions(nodes)
		o.NB = nb
		return o
	}
	variants := []variant{
		{"optimized", func(*mrinverse.Options) {}},
		{"no-separate-files", func(o *mrinverse.Options) { o.SeparateFiles = false }},
		{"no-block-wrap", func(o *mrinverse.Options) { o.BlockWrap = false }},
		{"no-transpose-u", func(o *mrinverse.Options) { o.TransposeU = false }},
		{"streaming", func(o *mrinverse.Options) { o.StreamingInversion = true }},
	}
	for _, v := range variants {
		opts := base(16)
		v.mod(&opts)
		start := time.Now()
		_, rep, err := mrinverse.Invert(a, opts)
		if err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}
		fmt.Printf("%-18s bytesRead=%-12d bytesWritten=%-11d files=%-4d wall=%v\n",
			v.name, rep.FS.BytesRead, rep.FS.BytesWritten, rep.FS.FilesCreated,
			time.Since(start).Round(time.Millisecond))
	}
}

func fig8(measure bool, n, nb int) {
	header("Figure 8: T_scalapack / T_ours (model, paper scale, medium instances)")
	fmt.Printf("%-4s %6s %8s\n", "mat", "nodes", "ratio")
	for _, p := range costmodel.Fig8() {
		fmt.Printf("%-4s %6d %8.2f\n", p.Matrix, p.Nodes, p.Ratio)
	}
	fmt.Println("(points where the in-memory baseline exceeds node RAM are omitted)")
	if !measure {
		return
	}
	fmt.Printf("--- measured on this machine: n=%d ---\n", n)
	a := mrinverse.Random(n, seedBase+2)
	for _, nodes := range []int{2, 4, 8} {
		opts := mrinverse.DefaultOptions(nodes)
		opts.NB = nb
		start := time.Now()
		if _, _, err := mrinverse.Invert(a, opts); err != nil {
			log.Fatal(err)
		}
		ours := time.Since(start)
		start = time.Now()
		if _, _, err := mrinverse.InvertScaLAPACK(a, mrinverse.ScaLAPACKConfig{Procs: nodes, BlockSize: 32}); err != nil {
			log.Fatal(err)
		}
		scal := time.Since(start)
		fmt.Printf("nodes=%2d  ours=%-12v scalapack=%-12v ratio=%.2f\n",
			nodes, ours.Round(time.Millisecond), scal.Round(time.Millisecond),
			scal.Seconds()/ours.Seconds())
	}
}

func sec74(measure bool, n, nb int) {
	header("Section 7.4/7.5: the very large matrix M4 (n=102400), model")
	fmt.Printf("%-14s %-12s %-12s %s\n", "system", "cluster", "model", "paper")
	for _, r := range costmodel.Sec74() {
		fmt.Printf("%-14s %-12s %-12s %s\n", r.System, r.Cluster, costmodel.FormatDuration(r.Time), r.Paper)
	}
	if !measure {
		return
	}
	fmt.Printf("--- measured failure recovery on this machine: n=%d ---\n", n)
	// Real failure-injection run: handled in the test suite and the
	// quickstart; here we rerun the pipeline and report job stats.
	a := mrinverse.Random(n, seedBase+3)
	opts := mrinverse.DefaultOptions(8)
	opts.NB = nb
	inv, rep, err := mrinverse.Invert(a, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean run: %d jobs, %d task failures, residual %.2g\n",
		rep.JobsRun, rep.TaskFailures, mrinverse.Residual(a, inv))
}

func acc(measure bool, n, nb int) {
	header("Section 7.2: numerical accuracy (real runs, this machine)")
	for _, order := range []int{64, 128, 256} {
		a := mrinverse.Random(order, int64(order))
		opts := mrinverse.DefaultOptions(4)
		opts.NB = maxInt(16, order/8)
		inv, _, err := mrinverse.Invert(a, opts)
		if err != nil {
			log.Fatalf("n=%d: %v", order, err)
		}
		res := mrinverse.Residual(a, inv)
		status := "PASS"
		if res > 1e-5 {
			status = "FAIL"
		}
		fmt.Printf("n=%4d  max|I-MM⁻¹| = %-10.3g (< 1e-5: %s)\n", order, res, status)
	}
	_ = measure
	_ = nb
	_ = workload.PaperNB
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func nbTune(measure bool, n, nb int) {
	header("Section 5: bound-value (nb) tuning on the paper's cluster (model)")
	c := costmodel.NewCluster(costmodel.Medium, 64)
	order := 102400
	fmt.Printf("%-8s %-12s %-12s %s\n", "nb", "pipeline", "leaf time", "jobs")
	for cand := 400; cand <= 25600; cand *= 2 {
		t := costmodel.OursTime(c, order, cand, costmodel.AllOpts)
		fmt.Printf("%-8d %-12s %-12s %d\n", cand,
			costmodel.FormatDuration(t), costmodel.FormatDuration(costmodel.LeafTime(costmodel.Medium, cand)),
			mrinverse.PipelineJobs(order, cand))
	}
	fmt.Printf("optimal nb = %d (paper used %d)\n", costmodel.OptimalNB(c, order), workload.PaperNB)
	fmt.Println("--- sensitivity to job-launch latency (Section 7.2's faster-launching claim) ---")
	for _, launch := range []time.Duration{60 * time.Second, 30 * time.Second, 5 * time.Second, time.Second} {
		cl := costmodel.Cluster{Node: costmodel.Medium, Nodes: 64, JobLaunch: launch}
		opt := costmodel.OptimalNB(cl, order)
		fmt.Printf("launch %-4s -> optimal nb %-6d pipeline %s\n",
			launch, opt, costmodel.FormatDuration(costmodel.OursTime(cl, order, opt, costmodel.AllOpts)))
	}
	_ = measure
}

func engines(measure bool, n, nb int) {
	header("Section 8: adaptive engine selection (model + execution)")
	for _, order := range []int{800, 20480, 102400} {
		c := costmodel.NewCluster(costmodel.Medium, 64)
		choice := costmodel.ChooseEngine(c, order, workload.PaperNB)
		fmt.Printf("n=%-7d -> %-10s %s\n", order, choice.Engine, choice.Reason)
	}
	if !measure {
		return
	}
	a := mrinverse.Random(n, seedBase+4)
	inv, choice, err := mrinverse.AutoInvert(a, mrinverse.ClusterSpec{Nodes: 16}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed %s on this machine for n=%d; residual %.2g\n",
		choice.Engine, n, mrinverse.Residual(a, inv))
}

func sparkExp(measure bool, n, nb int) {
	header("Section 8: Spark-style in-memory engine (real run, this machine)")
	a := mrinverse.Random(256, seedBase+5)
	start := time.Now()
	sparkInv, err := mrinverse.InvertSpark(a, 4, 64)
	if err != nil {
		log.Fatal(err)
	}
	sparkTime := time.Since(start)
	opts := mrinverse.DefaultOptions(4)
	opts.NB = 64
	start = time.Now()
	_, rep, err := mrinverse.Invert(a, opts)
	if err != nil {
		log.Fatal(err)
	}
	mrTime := time.Since(start)
	fmt.Printf("n=256: spark %-12v (no DFS traffic)   mapreduce %-12v (%d HDFS bytes read)\n",
		sparkTime.Round(time.Millisecond), mrTime.Round(time.Millisecond), rep.FS.BytesRead)
	fmt.Printf("spark residual %.2g\n", mrinverse.Residual(a, sparkInv))
	_ = measure
	_ = n
	_ = nb
}
