// matgen generates test matrices in the repository's text or binary
// formats (chosen by file extension: .txt is the paper's text format).
//
//	matgen -n 512 -kind random -seed 7 -o a.bin
//	matgen -n 256 -kind diagdom -o a.txt
//	matgen -table3          # print the paper's Table 3 matrix descriptors
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	mrinverse "repro"
	"repro/internal/matrix"
	"repro/internal/workload"
)

func main() {
	n := flag.Int("n", 256, "matrix order")
	kind := flag.String("kind", "random", "random | diagdom | spd | tridiagonal | projection")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("o", "a.bin", "output path (.txt selects text format)")
	table3 := flag.Bool("table3", false, "print the paper's Table 3 and exit")
	flag.Parse()

	if *table3 {
		fmt.Println("Matrix | Order | Elements (G) | Text (GB) | Binary (GB) | Jobs (nb=3200)")
		for _, s := range workload.Table3 {
			fmt.Printf("%-6s | %6d | %12.2f | %9.1f | %11.1f | %d\n",
				s.Name, s.Order, s.Elements, s.TextGB, s.BinaryGB, s.Jobs)
		}
		return
	}

	var m *matrix.Dense
	switch *kind {
	case "random":
		m = workload.Random(*n, *seed)
	case "diagdom":
		m = workload.DiagonallyDominant(*n, *seed)
	case "spd":
		m = workload.SPD(*n, *seed)
	case "tridiagonal":
		m = workload.Tridiagonal(*n)
	case "projection":
		m = workload.ProjectionMatrix(*n, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if err := mrinverse.WriteMatrixFile(*out, m); err != nil {
		log.Fatalf("write %s: %v", *out, err)
	}
	fmt.Printf("wrote %s: %dx%d %s matrix (seed %d)\n", *out, *n, *n, *kind, *seed)
}
