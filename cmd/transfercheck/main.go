// transfercheck is the shuffle-bytes regression gate: it runs one seeded
// multiplication per strategy on the gated M-suite shape, verifies every
// strategy is bit-identical to the sequential segmented reference, and
// compares the measured DFS transfer against the per-strategy baselines
// in ci/transfer_baseline.txt. The multiply jobs schedule with strict
// locality, so the measured bytes are exactly reproducible — any drift
// is a code change, not scheduling noise.
//
//	transfercheck                              # gate against the baseline
//	transfercheck -write                       # regenerate the baseline
//	transfercheck -n 256 -nodes 16 -seed 1     # the gated shape (defaults)
//
// The gate fails when any strategy transfers more than baseline x 1.05,
// when the replicated strategy stops beating single-round, or when any
// strategy's product is not bit-identical to the reference.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/workload"
)

// tolerance is the allowed regression over the recorded baseline.
const tolerance = 1.05

type measurement struct {
	strategy core.MultiplyStrategy
	rho      int
	bytes    int64
}

func main() {
	baselinePath := flag.String("baseline", "ci/transfer_baseline.txt", "per-strategy transfer baseline file")
	write := flag.Bool("write", false, "regenerate the baseline from this run instead of gating")
	n := flag.Int("n", 256, "matrix order of the gated product")
	nodes := flag.Int("nodes", 16, "simulated cluster size")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	a := workload.Random(*n, *seed+10)
	b := workload.Random(*n, *seed+20)
	measured, err := measure(a, b, *nodes)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range measured {
		fmt.Printf("%-14s rho=%d  transferred=%d bytes\n", m.strategy, m.rho, m.bytes)
	}

	if *write {
		if err := writeBaseline(*baselinePath, *n, *nodes, *seed, measured); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("baseline written to %s\n", *baselinePath)
		return
	}

	baseline, err := readBaseline(*baselinePath)
	if err != nil {
		log.Fatal(err)
	}
	failed := false
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "transfercheck: FAIL: "+format+"\n", args...)
		failed = true
	}
	byStrategy := map[core.MultiplyStrategy]measurement{}
	for _, m := range measured {
		byStrategy[m.strategy] = m
		base, ok := baseline[string(m.strategy)]
		if !ok {
			fail("%s: no baseline entry in %s (run with -write to add it)", m.strategy, *baselinePath)
			continue
		}
		limit := int64(float64(base) * tolerance)
		switch {
		case m.bytes > limit:
			fail("%s transferred %d bytes, over baseline %d +5%% (%d)", m.strategy, m.bytes, base, limit)
		case m.bytes != base:
			fmt.Printf("%-14s within tolerance: %d bytes vs baseline %d (run -write to ratchet)\n",
				m.strategy, m.bytes, base)
		default:
			fmt.Printf("%-14s matches baseline exactly\n", m.strategy)
		}
	}
	single, repl := byStrategy[core.MultiplySingleRound], byStrategy[core.MultiplyReplicated]
	if repl.bytes >= single.bytes {
		fail("replicated (%d bytes) no longer beats single-round (%d bytes) on the gated shape",
			repl.bytes, single.bytes)
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("transfer gate passed: replicated saves %.1f%% over single-round\n",
		100*(1-float64(repl.bytes)/float64(single.bytes)))
}

// measure runs every strategy on a fresh pipeline, checks bit-identity
// against the sequential segmented reference, and returns the per-run
// transfer totals.
func measure(a, b *matrix.Dense, nodes int) ([]measurement, error) {
	bT := b.Transpose()
	var out []measurement
	for _, strategy := range []core.MultiplyStrategy{
		core.MultiplySingleRound, core.MultiplyReplicated, core.MultiplySpaceRound,
	} {
		opts := core.DefaultOptions(nodes)
		opts.Multiply = strategy
		p, err := core.NewPipeline(opts)
		if err != nil {
			return nil, err
		}
		got, rep, err := p.MultiplyWithReport(a, b)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", strategy, err)
		}
		ref, err := matrix.MulSegTransB(a, bT, segBounds(a.Cols, rep.Rho))
		if err != nil {
			return nil, err
		}
		for i, v := range got.Data {
			if math.Float64bits(v) != math.Float64bits(ref.Data[i]) {
				return nil, fmt.Errorf("%s: element %d not bit-identical to reference (%g vs %g)",
					strategy, i, v, ref.Data[i])
			}
		}
		out = append(out, measurement{strategy: strategy, rho: rep.Rho, bytes: rep.TransferredBytes})
	}
	return out, nil
}

// segBounds reproduces the strategies' inner-dimension segmentation so
// the sequential reference folds partial products in the same order.
func segBounds(inner, rho int) []int {
	if rho < 2 {
		return []int{0, inner}
	}
	bounds := make([]int, rho+1)
	for s := 0; s <= rho; s++ {
		bounds[s] = s * inner / rho
	}
	return bounds
}

func writeBaseline(path string, n, nodes int, seed int64, measured []measurement) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# Shuffle-bytes baseline for the transfer regression gate (cmd/transfercheck).\n")
	fmt.Fprintf(&sb, "# Measured on the gated shape: n=%d nodes=%d seed=%d, strict-locality scheduling.\n", n, nodes, seed)
	fmt.Fprintf(&sb, "# Format: <strategy> <rho> <transferred-bytes>. Regenerate with: go run repro/cmd/transfercheck -write\n")
	for _, m := range measured {
		fmt.Fprintf(&sb, "%s %d %d\n", m.strategy, m.rho, m.bytes)
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

func readBaseline(path string) (map[string]int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]int64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var strategy string
		var rho int
		var bytes int64
		if _, err := fmt.Sscanf(line, "%s %d %d", &strategy, &rho, &bytes); err != nil {
			return nil, fmt.Errorf("%s: bad baseline line %q: %w", path, line, err)
		}
		out[strategy] = bytes
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no baseline entries", path)
	}
	return out, nil
}
