// chaosrun replays the paper's Section 7.4 failure-recovery experiment on
// this machine: it inverts a seeded matrix fault-free, inverts it again
// while a seeded chaos schedule kills datanodes mid-pipeline (plus one
// injected straggler and transient shuffle-fetch errors), and reports the
// slowdown and whether the two inverses are bit-identical.
//
//	chaosrun -n 192 -nb 48 -nodes 8 -kill 2 -seed 1
//	chaosrun -n 192 -nb 48 -nodes 8 -kill 2 -seed 1 -restart -json
//	chaosrun -kill 2 -assert          # CI smoke: nonzero exit on any miss
//
// The same seed always produces the same fault schedule and the same
// inverse, so a chaosrun invocation is a reproducible regression artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/chaos"
)

func main() {
	n := flag.Int("n", 192, "matrix order")
	nb := flag.Int("nb", 48, "block size (bound value)")
	nodes := flag.Int("nodes", 8, "simulated cluster size")
	kill := flag.Int("kill", 2, "datanodes to crash mid-pipeline")
	seed := flag.Int64("seed", 1, "matrix + fault-schedule seed")
	restart := flag.Bool("restart", false, "revive killed nodes later in the run")
	slow := flag.Duration("slow-delay", chaos.DefaultSlowDelay, "injected straggler length (0 disables)")
	fetchEvery := flag.Int("fetch-fail-every", 3, "inject transient fetch errors for ~1 in this many map outputs (0 disables)")
	jsonOut := flag.Bool("json", false, "emit the full experiment result as one JSON object")
	assert := flag.Bool("assert", false, "exit nonzero unless the run is bit-identical and exercised every failure mode")
	flag.Parse()

	res, err := chaos.RunExperiment(chaos.ExperimentConfig{
		N: *n, NB: *nb, Nodes: *nodes, Kill: *kill, Seed: *seed,
		Restart: *restart, SlowDelay: *slow, FetchFailEvery: *fetchEvery,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Printf("fault schedule (seed %d):\n%s\n", *seed, res.Plan)
		fmt.Printf("baseline: %8.1fms  %d jobs, %d task failures, residual %.2g\n",
			res.Baseline.ElapsedMs, res.Baseline.Jobs, res.Baseline.TaskFailures, res.Baseline.Residual)
		fmt.Printf("chaos:    %8.1fms  %d jobs, %d task failures, %d lost map outputs, %d speculative, %d fetch retries, residual %.2g\n",
			res.Faulty.ElapsedMs, res.Faulty.Jobs, res.Faulty.TaskFailures,
			res.Faulty.LostMapOutputs, res.Faulty.SpeculativeTasks, res.Faulty.FetchRetries, res.Faulty.Residual)
		fmt.Printf("injected: %d kills, %d restarts, %d crashed attempts, %d slow attempts, %d fetch errors, %d replicas healed (%d bytes re-replicated)\n",
			res.Chaos.Kills, res.Chaos.Restarts, res.Chaos.CrashedAttempts,
			res.Chaos.SlowAttempts, res.Chaos.FetchErrorsInjected,
			res.Chaos.ReplicasHealed, res.Chaos.BytesReReplicated)
		fmt.Printf("slowdown: %.2fx   inverse bit-identical to fault-free run: %v\n", res.Slowdown, res.Identical)
	}

	if *assert {
		fail := func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "chaosrun: ASSERT FAILED: "+format+"\n", args...)
			os.Exit(1)
		}
		if !res.Identical {
			fail("inverse under chaos differs from fault-free run (%s vs %s)",
				res.Faulty.SHA256, res.Baseline.SHA256)
		}
		if res.Chaos.Kills != *kill {
			fail("%d of %d scheduled kills fired", res.Chaos.Kills, *kill)
		}
		if *kill > 0 && res.Faulty.TaskFailures == 0 {
			fail("no task failures despite killed nodes")
		}
		if *slow > 0 && res.Faulty.SpeculativeTasks == 0 {
			fail("injected straggler drove no speculative attempt")
		}
		if *kill > 0 && res.Chaos.BytesReReplicated == 0 {
			fail("no bytes re-replicated despite killed nodes")
		}
	}
}
