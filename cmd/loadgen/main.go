// loadgen drives a matserve instance — or a whole federated fleet — and
// reports serving throughput and latency percentiles as JSONL: the
// repository's end-to-end serving benchmark.
//
// Two driving disciplines:
//
//   - closed loop (-mode closed): -concurrency workers issue requests
//     back-to-back, measuring the server's sustainable throughput;
//   - open loop (-mode open): requests arrive at a fixed -rate regardless
//     of completions, measuring latency under offered load (and provoking
//     429 backpressure when the rate exceeds capacity).
//
// Requests are drawn from an internal/workload request mix: weighted
// shapes, a duplicate fraction, and optionally a fixed hot-key set
// (-hot-keys/-hot-frac) that skews traffic onto a handful of matrices —
// the shape that concentrates load on their digest-home shards. Square
// entries ("64:3") post to /invert; tall rowsxcols entries ("512x8:2")
// post the matrix plus a seeded right-hand side to /lstsq, and -verify
// checks each returned solution against the sequential QR reference.
// Each request is billed to a tenant drawn from -tenant-mix and sent as
// the X-Tenant header. Everything is reproducible run-to-run under a
// fixed -seed.
//
// With no -url, loadgen starts its own in-process fleet (-shards shards
// behind the consistent-hash router) on a loopback port, making
// `make load` and `make fleet-smoke` self-contained:
//
//	loadgen -requests 64 -mode closed -concurrency 8 -seed 7
//	loadgen -shards 4 -tenant-mix 'gold:3,free:1' -tenants-quota 'gold=16:5,free=8:0'
//	loadgen -url http://localhost:8723 -mode open -rate 50 -requests 200
//
// The summary line carries fleet-wide latency percentiles plus per-tenant
// and per-shard breakdowns, the spill/home routing split, and cache hit
// rate; -assert-error-rate and -assert-min-spills turn a run into a CI
// gate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/fed"
	"repro/internal/incr"
	"repro/internal/matrix"
	"repro/internal/serve"
	"repro/internal/tsqr"
	"repro/internal/workload"
)

type result struct {
	Index    int     `json:"i"`
	Order    int     `json:"order"`
	Cols     int     `json:"cols,omitempty"` // 0 = square (inversion)
	Dup      bool    `json:"dup"`
	Hot      bool    `json:"hot,omitempty"`
	Delta    bool    `json:"delta,omitempty"`
	Tenant   string  `json:"tenant,omitempty"`
	Status   int     `json:"status"`
	Source   string  `json:"source,omitempty"`
	Shard    int     `json:"shard"`
	Route    string  `json:"route,omitempty"`
	Millis   float64 `json:"ms"`
	Err      string  `json:"err,omitempty"`
	Verified bool    `json:"verified,omitempty"`
	started  time.Time
}

// groupSummary is one per-tenant or per-shard breakdown row: enough to
// see quota/QoS and placement effects instead of only fleet aggregates.
type groupSummary struct {
	Requests  int            `json:"requests"`
	OK        int            `json:"ok"`
	ErrorRate float64        `json:"error_rate"`
	Statuses  map[string]int `json:"statuses,omitempty"`
	CacheHits int            `json:"cache_hits"`
	DedupHits int            `json:"dedup_hits"`
	IncrHits  int            `json:"incr_hits,omitempty"`
	Spills    int            `json:"spills"`
	P50Ms     float64        `json:"p50_ms"`
	P95Ms     float64        `json:"p95_ms"`
	P99Ms     float64        `json:"p99_ms"`
}

type summary struct {
	Kind       string         `json:"kind"` // "summary"
	Mode       string         `json:"mode"`
	Seed       int64          `json:"seed"`
	Shards     int            `json:"shards,omitempty"`
	Route      string         `json:"route,omitempty"`
	Requests   int            `json:"requests"`
	OK         int            `json:"ok"`
	Lstsq      int            `json:"lstsq,omitempty"` // tall (least-squares) requests issued
	Verified   int            `json:"verified,omitempty"`
	Statuses   map[string]int `json:"statuses"`
	CacheHits  int            `json:"cache_hits"`
	DedupHits  int            `json:"dedup_hits"`
	IncrHits   int            `json:"incr_hits"`
	Deltas     int            `json:"deltas,omitempty"` // delta-mutation requests issued
	WallSec    float64        `json:"wall_s"`
	Throughput float64        `json:"throughput_rps"`
	MeanMs     float64        `json:"mean_ms"`
	P50Ms      float64        `json:"p50_ms"`
	P95Ms      float64        `json:"p95_ms"`
	P99Ms      float64        `json:"p99_ms"`
	// Federation view: how placement went across the fleet.
	CacheHitRate float64                  `json:"cache_hit_rate"`
	Spills       int                      `json:"spills"`
	SpillRate    float64                  `json:"spill_rate"`
	HomeHits     int                      `json:"home_hits"`
	Tenants      map[string]*groupSummary `json:"tenants,omitempty"`
	PerShard     map[string]*groupSummary `json:"per_shard,omitempty"`
	// PerSource breaks latency down by how the server produced each
	// answer (pipeline / cache / dedup / incremental): the update-vs-full
	// serving comparison in one place.
	PerSource map[string]*groupSummary `json:"per_source,omitempty"`
	// Scheduler view from the server's /statz, summed across shards: how
	// hard the slot pools were driven by this run.
	SlotCap        int     `json:"slot_cap,omitempty"`
	SlotPeak       int     `json:"slot_peak,omitempty"`
	SlotGrants     int64   `json:"slot_grants,omitempty"`
	SlotWaitCount  int64   `json:"slot_wait_count,omitempty"`
	SlotWaitMeanMs float64 `json:"slot_wait_mean_ms,omitempty"`
	// Fleet /statz rollups.
	FedSpills         int64 `json:"fed_spills,omitempty"`
	FedTenantRejected int64 `json:"fed_tenant_rejected,omitempty"`
	FedBaseRouted     int64 `json:"fed_base_routed,omitempty"`
	FedIncrUpdates    int64 `json:"fed_incr_updates,omitempty"`
	// Chaos view from /statz when the in-process fleet ran with
	// -chaos-kill: how many faults were injected while this load ran, and
	// how many of the issued requests still failed.
	ErrorRate            float64 `json:"error_rate"`
	ChaosKills           int     `json:"chaos_kills,omitempty"`
	ChaosRestarts        int     `json:"chaos_restarts,omitempty"`
	ChaosBytesReplicated int64   `json:"chaos_bytes_rereplicated,omitempty"`
	ChaosCrashedAttempts int     `json:"chaos_crashed_attempts,omitempty"`
	ChaosFetchErrs       int     `json:"chaos_fetch_errors,omitempty"`
	NodesAlive           int     `json:"nodes_alive,omitempty"`
}

// tenantPick is one weighted entry of the -tenant-mix distribution.
type tenantPick struct {
	name   string
	weight float64
}

// parseTenantMix parses "name:weight,name:weight,..." (e.g.
// "gold:3,free:1"). Empty means every request is anonymous.
func parseTenantMix(s string) ([]tenantPick, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []tenantPick
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		nw := strings.SplitN(part, ":", 2)
		if len(nw) != 2 || strings.TrimSpace(nw[0]) == "" {
			return nil, fmt.Errorf("tenant-mix entry %q: want name:weight", part)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(nw[1]), 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("tenant-mix entry %q: bad weight", part)
		}
		out = append(out, tenantPick{name: strings.TrimSpace(nw[0]), weight: w})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty tenant mix %q", s)
	}
	return out, nil
}

func main() {
	url := flag.String("url", "", "matserve base URL; empty starts an in-process fleet")
	mode := flag.String("mode", "closed", "closed (fixed concurrency) | open (fixed arrival rate)")
	concurrency := flag.Int("concurrency", 8, "closed-loop worker count")
	rate := flag.Float64("rate", 16, "open-loop arrival rate, requests/second")
	requests := flag.Int("requests", 64, "total requests to issue")
	seed := flag.Int64("seed", 1, "workload seed: same seed, same request sequence")
	mixSpec := flag.String("mix", "24:5,40:3,64:2", "request shape mix as shape:weight,... (shape is a square order like 64, or rowsxcols like 512x8 for tall /lstsq requests)")
	dup := flag.Float64("dup", 0.25, "duplicate-request probability (exercises dedup + cache)")
	hotKeys := flag.Int("hot-keys", 0, "fixed hot-key set size (0 = no hot keys)")
	hotFrac := flag.Float64("hot-frac", 0.5, "probability a request is one of the hot keys")
	deltaFrac := flag.Float64("delta-frac", 0, "probability a request is a rank-k row mutation of a previously issued square base (update traffic; sent with X-Base-Digest)")
	deltaRank := flag.Int("delta-rank", 1, "rows perturbed per delta request (clamped to order/4)")
	tenantMix := flag.String("tenant-mix", "", "tenant billing mix as name:weight,... (sent as X-Tenant)")
	timeout := flag.Duration("timeout", 0, "per-request server-side deadline (0 = none)")
	nodes := flag.Int("nodes", 0, "nodes override sent with each request (0 = server default)")
	nb := flag.Int("nb", 0, "nb override sent with each request (0 = server default)")
	priority := flag.Int("priority", 0, "fair-share priority sent with each request (higher wins contended slots)")
	perRequest := flag.Bool("per-request", false, "emit one JSONL line per request before the summary")
	shards := flag.Int("shards", 1, "in-process fleet: number of cluster shards")
	vnodes := flag.Int("vnodes", fed.DefaultVNodes, "in-process fleet: ring virtual nodes per shard")
	route := flag.String("route", fed.RouteDigest, "in-process fleet: digest (cache-local) | random (baseline)")
	tenantsQuota := flag.String("tenants-quota", "", "in-process fleet: tenant admission table name=quota[:priority],...")
	serveConc := flag.Int("serve-concurrency", 4, "in-process fleet: concurrent pipelines per shard")
	serveQueue := flag.Int("serve-queue", 64, "in-process fleet: admission queue depth per shard")
	chaosKill := flag.Int("chaos-kill", 0, "in-process fleet: kill this many datanodes on shard 0 under load (chaos mode)")
	chaosSeed := flag.Int64("chaos-seed", 1, "in-process fleet: fault-schedule seed for -chaos-kill")
	incrEnable := flag.Bool("incr", false, "in-process fleet: enable the incremental (SMW) inversion path on every shard")
	incrKMax := flag.Int("incr-kmax", 0, "in-process fleet: max delta rank served incrementally (0 = default)")
	incrBases := flag.Int("incr-bases", 0, "in-process fleet: base-inverse index entries per shard (0 = default)")
	verify := flag.Bool("verify", false, "verify each /lstsq solution against the sequential QR reference (1e-8); mismatches count as errors")
	assertErrRate := flag.Float64("assert-error-rate", -1, "exit nonzero unless error_rate <= this (negative disables)")
	assertMinSpills := flag.Int("assert-min-spills", -1, "exit nonzero unless at least this many requests spilled (negative disables)")
	assertMinIncr := flag.Int("assert-min-incremental", -1, "exit nonzero unless at least this many requests were served incrementally (negative disables)")
	assertIncrFaster := flag.Bool("assert-incr-faster", false, "exit nonzero unless incremental p50 beats the full-pipeline p50")
	flag.Parse()

	if *chaosKill > 0 && *url != "" {
		log.Fatal("-chaos-kill injects faults into the in-process fleet; it cannot target an external -url")
	}

	entries, err := workload.ParseMix(*mixSpec)
	if err != nil {
		log.Fatal(err)
	}
	mix := workload.Mix{Entries: entries, DupProb: *dup, HotKeys: *hotKeys, HotProb: *hotFrac,
		DeltaProb: *deltaFrac, DeltaRank: *deltaRank}
	tenants, err := parseTenantMix(*tenantMix)
	if err != nil {
		log.Fatal(err)
	}

	incrCfg := incr.Config{Enabled: *incrEnable, KMax: *incrKMax, MaxBases: *incrBases}
	base := *url
	if base == "" {
		var stop func()
		base, stop = selfFleet(*shards, *vnodes, *route, *tenantsQuota,
			*serveConc, *serveQueue, *chaosKill, *chaosSeed, incrCfg)
		defer stop()
	}
	query := "?"
	if *timeout > 0 {
		query += fmt.Sprintf("timeout=%s&", *timeout)
	}
	if *nodes > 0 {
		query += fmt.Sprintf("nodes=%d&", *nodes)
	}
	if *nb > 0 {
		query += fmt.Sprintf("nb=%d&", *nb)
	}
	if *priority != 0 {
		query += fmt.Sprintf("priority=%d&", *priority)
	}
	// Square specs invert; tall specs least-squares solve.
	target := func(sp workload.RequestSpec) string {
		if sp.Tall() {
			return base + "/lstsq" + query
		}
		return base + "/invert" + query
	}

	// Materialize the request sequence up front: deterministic under
	// -seed, and duplicate specs reuse the serialized body bytes. Tenant
	// assignment draws from its own rng so adding a tenant mix does not
	// shift the matrix sequence.
	stream := mix.Stream(*seed)
	specs := stream.Take(*requests)
	billing := make([]string, *requests)
	if len(tenants) > 0 {
		var total float64
		for _, tp := range tenants {
			total += tp.weight
		}
		trng := rand.New(rand.NewSource(*seed ^ 0x7e7a))
		for i := range billing {
			u := trng.Float64() * total
			for _, tp := range tenants {
				if u -= tp.weight; u <= 0 {
					billing[i] = tp.name
					break
				}
			}
			if billing[i] == "" {
				billing[i] = tenants[len(tenants)-1].name
			}
		}
	}
	// Bodies are keyed by the full (order, cols, seed, delta) identity so
	// a tall spec can never collide with a square one and a delta
	// mutation never collides with its base. Tall bodies carry the /lstsq
	// wire format: matrix A immediately followed by its rhs.
	specKey := func(sp workload.RequestSpec) [5]int64 {
		return [5]int64{int64(sp.Order), int64(sp.Cols), sp.Seed, int64(sp.DeltaRank), sp.DeltaSeed}
	}
	bodies := make(map[[5]int64][]byte)
	refs := make(map[[5]int64]*matrix.Dense) // -verify: sequential lstsq reference
	// Delta requests carry an X-Base-Digest hint naming the digest their
	// unmutated base was served (and its inverse indexed) under.
	baseDigests := make(map[[5]int64]string)
	for _, sp := range specs {
		k := specKey(sp)
		if _, ok := bodies[k]; ok {
			continue
		}
		var buf bytes.Buffer
		a := sp.Build()
		if sp.Delta() {
			baseDigests[k] = serve.KeyFor(
				serve.Request{A: sp.Base().Build(), Nodes: *nodes, NB: *nb}, fleetOpts())
		}
		if err := matrix.WriteBinary(&buf, a); err != nil {
			log.Fatal(err)
		}
		if sp.Tall() {
			rhs := sp.Rhs()
			if err := matrix.WriteBinary(&buf, rhs); err != nil {
				log.Fatal(err)
			}
			if *verify {
				ref, err := tsqr.SequentialLstsq(a, rhs)
				if err != nil {
					log.Fatalf("reference solve for %dx%d seed %d: %v", sp.Order, sp.Cols, sp.Seed, err)
				}
				refs[k] = ref
			}
		}
		bodies[k] = buf.Bytes()
	}
	body := func(sp workload.RequestSpec) []byte { return bodies[specKey(sp)] }

	client := &http.Client{}
	results := make([]result, *requests)
	fire := func(i int) {
		sp := specs[i]
		res := result{Index: i, Order: sp.Order, Cols: sp.Cols, Dup: sp.Dup, Hot: sp.Hot,
			Delta: sp.Delta(), Tenant: billing[i], Shard: -1, started: time.Now()}
		hreq, err := http.NewRequest(http.MethodPost, target(sp), bytes.NewReader(body(sp)))
		if err != nil {
			res.Err = err.Error()
			results[i] = res
			return
		}
		hreq.Header.Set("Content-Type", "application/octet-stream")
		if res.Tenant != "" {
			hreq.Header.Set("X-Tenant", res.Tenant)
		}
		if hint := baseDigests[specKey(sp)]; hint != "" {
			hreq.Header.Set("X-Base-Digest", hint)
		}
		resp, err := client.Do(hreq)
		res.Millis = float64(time.Since(res.started).Microseconds()) / 1000
		if err != nil {
			res.Err = err.Error()
		} else {
			ref := refs[specKey(sp)]
			if ref != nil && resp.StatusCode == http.StatusOK {
				if x, derr := matrix.ReadBinary(resp.Body); derr != nil {
					res.Err = "undecodable solution: " + derr.Error()
				} else if d := matrix.MaxAbsDiff(x, ref); d > 1e-8 {
					res.Err = fmt.Sprintf("solution off sequential reference by %.3g", d)
				} else {
					res.Verified = true
				}
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			res.Status = resp.StatusCode
			res.Source = resp.Header.Get("X-Source")
			res.Route = resp.Header.Get("X-Fed-Route")
			if v := resp.Header.Get("X-Shard"); v != "" {
				if sh, serr := strconv.Atoi(v); serr == nil {
					res.Shard = sh
				}
			}
		}
		results[i] = res
	}

	start := time.Now()
	switch *mode {
	case "closed":
		var wg sync.WaitGroup
		next := make(chan int)
		go func() {
			for i := 0; i < *requests; i++ {
				next <- i
			}
			close(next)
		}()
		for w := 0; w < *concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					fire(i)
				}
			}()
		}
		wg.Wait()
	case "open":
		if *rate <= 0 {
			log.Fatal("open loop needs -rate > 0")
		}
		interval := time.Duration(float64(time.Second) / *rate)
		var wg sync.WaitGroup
		ticker := time.NewTicker(interval)
		for i := 0; i < *requests; i++ {
			if i > 0 {
				<-ticker.C
			}
			wg.Add(1)
			go func(i int) { defer wg.Done(); fire(i) }(i)
		}
		ticker.Stop()
		wg.Wait()
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	wall := time.Since(start)

	enc := json.NewEncoder(os.Stdout)
	if *perRequest {
		for _, r := range results {
			enc.Encode(r)
		}
	}
	sum := summarize(*mode, *seed, results, wall)
	addFleetStats(&sum, client, base)
	enc.Encode(sum)

	if *assertErrRate >= 0 && sum.ErrorRate > *assertErrRate {
		log.Fatalf("assert: error_rate %.4f > %.4f", sum.ErrorRate, *assertErrRate)
	}
	if *assertMinSpills >= 0 && sum.Spills < *assertMinSpills {
		log.Fatalf("assert: %d spills < required %d (overflow spill never engaged)", sum.Spills, *assertMinSpills)
	}
	if *assertMinIncr >= 0 && sum.IncrHits < *assertMinIncr {
		log.Fatalf("assert: %d incremental hits < required %d (incremental path never engaged)", sum.IncrHits, *assertMinIncr)
	}
	if *assertIncrFaster {
		inc, full := sum.PerSource["incremental"], sum.PerSource["pipeline"]
		if inc == nil || full == nil {
			log.Fatal("assert: -assert-incr-faster needs both incremental and full-pipeline traffic in the run")
		}
		if inc.P50Ms >= full.P50Ms {
			log.Fatalf("assert: incremental p50 %.3fms not below full-pipeline p50 %.3fms", inc.P50Ms, full.P50Ms)
		}
	}
}

// addFleetStats folds the server's /statz fleet view into the summary:
// scheduler load summed over shards, routing counters, chaos injections.
// Best-effort: a server without /statz just leaves the fields zero.
func addFleetStats(s *summary, client *http.Client, base string) {
	resp, err := client.Get(base + "/statz")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var st fed.Stats
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&st) != nil {
		return
	}
	s.Shards = len(st.Shards)
	s.Route = st.Route
	s.FedSpills = st.Spills
	s.FedTenantRejected = st.TenantRejected
	s.FedBaseRouted = st.BaseRouted
	s.FedIncrUpdates = st.IncrUpdates
	for _, sh := range st.Shards {
		sv := sh.Serve
		s.SlotCap += sv.Scheduler.Capacity
		s.SlotPeak += sv.Scheduler.Peak
		s.SlotGrants += sv.Scheduler.Grants
		s.SlotWaitCount += sv.SlotWaitCount
		s.SlotWaitMeanMs += sv.SlotWaitMeanMs * float64(sv.SlotWaitCount)
		s.NodesAlive += sv.NodesAlive
		if sv.Chaos != nil {
			s.ChaosKills += sv.Chaos.Kills
			s.ChaosRestarts += sv.Chaos.Restarts
			s.ChaosBytesReplicated += sv.Chaos.BytesReReplicated
			s.ChaosCrashedAttempts += sv.Chaos.CrashedAttempts
			s.ChaosFetchErrs += sv.Chaos.FetchErrorsInjected
		}
	}
	if s.SlotWaitCount > 0 {
		s.SlotWaitMeanMs /= float64(s.SlotWaitCount)
	}
}

// summarize folds per-request results into the JSONL summary line,
// including the per-tenant and per-shard breakdown rows.
func summarize(mode string, seed int64, results []result, wall time.Duration) summary {
	s := summary{Kind: "summary", Mode: mode, Seed: seed, Requests: len(results),
		Statuses: map[string]int{}, WallSec: wall.Seconds()}
	var lat []float64
	var sum float64
	tenantLat := map[string][]float64{}
	shardLat := map[string][]float64{}
	sourceLat := map[string][]float64{}
	group := func(m map[string]*groupSummary, key string) *groupSummary {
		g, ok := m[key]
		if !ok {
			g = &groupSummary{Statuses: map[string]int{}}
			m[key] = g
		}
		return g
	}
	for _, r := range results {
		var groups []*groupSummary
		if r.Tenant != "" {
			if s.Tenants == nil {
				s.Tenants = map[string]*groupSummary{}
			}
			g := group(s.Tenants, r.Tenant)
			groups = append(groups, g)
		}
		if r.Shard >= 0 {
			if s.PerShard == nil {
				s.PerShard = map[string]*groupSummary{}
			}
			groups = append(groups, group(s.PerShard, strconv.Itoa(r.Shard)))
		}
		status := "error"
		if r.Err == "" {
			status = strconv.Itoa(r.Status)
		}
		s.Statuses[status]++
		if r.Cols > 0 {
			s.Lstsq++
		}
		if r.Delta {
			s.Deltas++
		}
		if r.Verified {
			s.Verified++
		}
		for _, g := range groups {
			g.Requests++
			g.Statuses[status]++
		}
		if r.Err != "" || r.Status != http.StatusOK {
			continue
		}
		s.OK++
		lat = append(lat, r.Millis)
		sum += r.Millis
		switch r.Source {
		case "cache":
			s.CacheHits++
		case "dedup":
			s.DedupHits++
		case "incremental":
			s.IncrHits++
		}
		if r.Source != "" {
			if s.PerSource == nil {
				s.PerSource = map[string]*groupSummary{}
			}
			g := group(s.PerSource, r.Source)
			g.Requests++
			g.OK++
			sourceLat[r.Source] = append(sourceLat[r.Source], r.Millis)
		}
		if r.Route == "spill" {
			s.Spills++
		} else if r.Route == "home" {
			s.HomeHits++
		}
		for _, g := range groups {
			g.OK++
			switch r.Source {
			case "cache":
				g.CacheHits++
			case "dedup":
				g.DedupHits++
			case "incremental":
				g.IncrHits++
			}
			if r.Route == "spill" {
				g.Spills++
			}
		}
		if r.Tenant != "" {
			tenantLat[r.Tenant] = append(tenantLat[r.Tenant], r.Millis)
		}
		if r.Shard >= 0 {
			shardLat[strconv.Itoa(r.Shard)] = append(shardLat[strconv.Itoa(r.Shard)], r.Millis)
		}
	}
	finishGroups := func(m map[string]*groupSummary, lats map[string][]float64) {
		for key, g := range m {
			if g.Requests > 0 {
				g.ErrorRate = float64(g.Requests-g.OK) / float64(g.Requests)
			}
			if l := lats[key]; len(l) > 0 {
				sort.Float64s(l)
				g.P50Ms = percentile(l, 0.50)
				g.P95Ms = percentile(l, 0.95)
				g.P99Ms = percentile(l, 0.99)
			}
		}
	}
	finishGroups(s.Tenants, tenantLat)
	finishGroups(s.PerShard, shardLat)
	finishGroups(s.PerSource, sourceLat)
	if wall > 0 {
		s.Throughput = float64(s.OK) / wall.Seconds()
	}
	if len(results) > 0 {
		s.ErrorRate = float64(len(results)-s.OK) / float64(len(results))
	}
	if s.OK > 0 {
		s.CacheHitRate = float64(s.CacheHits) / float64(s.OK)
		s.SpillRate = float64(s.Spills) / float64(s.OK)
	}
	if len(lat) > 0 {
		sort.Float64s(lat)
		s.MeanMs = sum / float64(len(lat))
		s.P50Ms = percentile(lat, 0.50)
		s.P95Ms = percentile(lat, 0.95)
		s.P99Ms = percentile(lat, 0.99)
	}
	return s
}

// percentile reads the p-quantile from sorted latencies (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// fleetOpts are the solve options the in-process fleet serves with. The
// delta traffic's X-Base-Digest hints are computed against the same
// options so they name the digest the server actually cached under; for
// an external -url with different options the hint simply misses and the
// server falls back to its fingerprint probe.
func fleetOpts() core.Options {
	opts := core.DefaultOptions(8)
	opts.NB = 64
	return opts
}

// selfFleet starts an in-process federated fleet on a loopback port and
// returns its base URL plus a shutdown function. chaosKill > 0 runs shard
// 0's cluster under a seeded fault schedule: that many datanodes crash
// while the load runs (and are later revived, so capacity recovers),
// proving the fleet absorbs node loss — by in-shard recovery or spill —
// without failing requests.
func selfFleet(shards, vnodes int, route, tenantsQuota string, concurrency, queue, chaosKill int, chaosSeed int64, ic incr.Config) (string, func()) {
	specs, err := fed.ParseTenants(tenantsQuota)
	if err != nil {
		log.Fatal(err)
	}
	opts := fleetOpts()
	shardCfg := serve.Config{
		Concurrency: concurrency,
		QueueDepth:  queue,
		CacheBytes:  64 << 20,
		Opts:        opts,
		Incr:        ic,
	}
	if chaosKill > 0 {
		plan := chaos.RandomPlan(chaosSeed, chaos.PlanConfig{
			Nodes:   opts.Nodes,
			Kills:   chaosKill,
			Horizon: 64,
			Restart: true,
		})
		shardCfg.Chaos = &plan
	}
	fleet, err := fed.New(fed.Config{
		Shards:  shards,
		VNodes:  vnodes,
		Route:   route,
		Tenants: specs,
		Shard:   shardCfg,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: fed.NewHandler(fleet)}
	go hs.Serve(ln)
	stop := func() {
		fleet.Close()
		hs.Close()
	}
	return "http://" + ln.Addr().String(), stop
}
