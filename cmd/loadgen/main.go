// loadgen drives a matserve instance and reports serving throughput and
// latency percentiles as JSONL — the repository's end-to-end serving
// benchmark.
//
// Two driving disciplines:
//
//   - closed loop (-mode closed): -concurrency workers issue requests
//     back-to-back, measuring the server's sustainable throughput;
//   - open loop (-mode open): requests arrive at a fixed -rate regardless
//     of completions, measuring latency under offered load (and provoking
//     429 backpressure when the rate exceeds capacity).
//
// Requests are drawn from an internal/workload request mix (weighted
// sizes plus a duplicate fraction that exercises the server's dedup and
// cache paths) and are reproducible run-to-run under a fixed -seed.
//
// With no -url, loadgen starts its own in-process matserve on a loopback
// port, making `make load` self-contained:
//
//	loadgen -requests 64 -mode closed -concurrency 8 -seed 7
//	loadgen -url http://localhost:8723 -mode open -rate 50 -requests 200
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/serve"
	"repro/internal/workload"
)

type result struct {
	Index   int     `json:"i"`
	Order   int     `json:"order"`
	Dup     bool    `json:"dup"`
	Status  int     `json:"status"`
	Source  string  `json:"source,omitempty"`
	Millis  float64 `json:"ms"`
	Err     string  `json:"err,omitempty"`
	started time.Time
}

type summary struct {
	Kind       string         `json:"kind"` // "summary"
	Mode       string         `json:"mode"`
	Seed       int64          `json:"seed"`
	Requests   int            `json:"requests"`
	OK         int            `json:"ok"`
	Statuses   map[string]int `json:"statuses"`
	CacheHits  int            `json:"cache_hits"`
	DedupHits  int            `json:"dedup_hits"`
	WallSec    float64        `json:"wall_s"`
	Throughput float64        `json:"throughput_rps"`
	MeanMs     float64        `json:"mean_ms"`
	P50Ms      float64        `json:"p50_ms"`
	P95Ms      float64        `json:"p95_ms"`
	P99Ms      float64        `json:"p99_ms"`
	// Scheduler view from the server's /statz: how hard the shared
	// cluster's slot pool was driven by this run.
	SlotCap        int     `json:"slot_cap,omitempty"`
	SlotPeak       int     `json:"slot_peak,omitempty"`
	SlotGrants     int64   `json:"slot_grants,omitempty"`
	SlotWaitCount  int64   `json:"slot_wait_count,omitempty"`
	SlotWaitMeanMs float64 `json:"slot_wait_mean_ms,omitempty"`
	// Chaos view from /statz when the in-process server ran with -chaos-kill:
	// how many faults were injected while this load ran, and how many of
	// the issued requests still failed.
	ErrorRate            float64 `json:"error_rate"`
	ChaosKills           int     `json:"chaos_kills,omitempty"`
	ChaosRestarts        int     `json:"chaos_restarts,omitempty"`
	ChaosBytesReplicated int64   `json:"chaos_bytes_rereplicated,omitempty"`
	ChaosCrashedAttempts int     `json:"chaos_crashed_attempts,omitempty"`
	ChaosFetchErrs       int     `json:"chaos_fetch_errors,omitempty"`
	NodesAlive           int     `json:"nodes_alive,omitempty"`
}

func main() {
	url := flag.String("url", "", "matserve base URL; empty starts an in-process server")
	mode := flag.String("mode", "closed", "closed (fixed concurrency) | open (fixed arrival rate)")
	concurrency := flag.Int("concurrency", 8, "closed-loop worker count")
	rate := flag.Float64("rate", 16, "open-loop arrival rate, requests/second")
	requests := flag.Int("requests", 64, "total requests to issue")
	seed := flag.Int64("seed", 1, "workload seed: same seed, same request sequence")
	mixSpec := flag.String("mix", "24:5,40:3,64:2", "request size mix as order:weight,...")
	dup := flag.Float64("dup", 0.25, "duplicate-request probability (exercises dedup + cache)")
	timeout := flag.Duration("timeout", 0, "per-request server-side deadline (0 = none)")
	nodes := flag.Int("nodes", 0, "nodes override sent with each request (0 = server default)")
	nb := flag.Int("nb", 0, "nb override sent with each request (0 = server default)")
	priority := flag.Int("priority", 0, "fair-share priority sent with each request (higher wins contended slots)")
	perRequest := flag.Bool("per-request", false, "emit one JSONL line per request before the summary")
	serveConc := flag.Int("serve-concurrency", 4, "in-process server: concurrent pipelines")
	serveQueue := flag.Int("serve-queue", 64, "in-process server: admission queue depth")
	chaosKill := flag.Int("chaos-kill", 0, "in-process server: kill this many datanodes under load (chaos mode)")
	chaosSeed := flag.Int64("chaos-seed", 1, "in-process server: fault-schedule seed for -chaos-kill")
	flag.Parse()

	if *chaosKill > 0 && *url != "" {
		log.Fatal("-chaos-kill injects faults into the in-process server; it cannot target an external -url")
	}

	entries, err := workload.ParseMix(*mixSpec)
	if err != nil {
		log.Fatal(err)
	}
	mix := workload.Mix{Entries: entries, DupProb: *dup}

	base := *url
	if base == "" {
		var stop func()
		base, stop = selfServe(*serveConc, *serveQueue, *chaosKill, *chaosSeed)
		defer stop()
	}
	target := base + "/invert?"
	if *timeout > 0 {
		target += fmt.Sprintf("timeout=%s&", *timeout)
	}
	if *nodes > 0 {
		target += fmt.Sprintf("nodes=%d&", *nodes)
	}
	if *nb > 0 {
		target += fmt.Sprintf("nb=%d&", *nb)
	}
	if *priority != 0 {
		target += fmt.Sprintf("priority=%d&", *priority)
	}

	// Materialize the request sequence up front: deterministic under
	// -seed, and duplicate specs reuse the serialized body bytes.
	stream := mix.Stream(*seed)
	specs := stream.Take(*requests)
	bodies := make(map[[2]int64][]byte)
	for _, sp := range specs {
		k := [2]int64{int64(sp.Order), sp.Seed}
		if _, ok := bodies[k]; !ok {
			var buf bytes.Buffer
			if err := matrix.WriteBinary(&buf, sp.Build()); err != nil {
				log.Fatal(err)
			}
			bodies[k] = buf.Bytes()
		}
	}
	body := func(sp workload.RequestSpec) []byte { return bodies[[2]int64{int64(sp.Order), sp.Seed}] }

	client := &http.Client{}
	results := make([]result, *requests)
	fire := func(i int) {
		sp := specs[i]
		res := result{Index: i, Order: sp.Order, Dup: sp.Dup, started: time.Now()}
		resp, err := client.Post(target, "application/octet-stream", bytes.NewReader(body(sp)))
		res.Millis = float64(time.Since(res.started).Microseconds()) / 1000
		if err != nil {
			res.Err = err.Error()
		} else {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			res.Status = resp.StatusCode
			res.Source = resp.Header.Get("X-Source")
		}
		results[i] = res
	}

	start := time.Now()
	switch *mode {
	case "closed":
		var wg sync.WaitGroup
		next := make(chan int)
		go func() {
			for i := 0; i < *requests; i++ {
				next <- i
			}
			close(next)
		}()
		for w := 0; w < *concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					fire(i)
				}
			}()
		}
		wg.Wait()
	case "open":
		if *rate <= 0 {
			log.Fatal("open loop needs -rate > 0")
		}
		interval := time.Duration(float64(time.Second) / *rate)
		var wg sync.WaitGroup
		ticker := time.NewTicker(interval)
		for i := 0; i < *requests; i++ {
			if i > 0 {
				<-ticker.C
			}
			wg.Add(1)
			go func(i int) { defer wg.Done(); fire(i) }(i)
		}
		ticker.Stop()
		wg.Wait()
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	wall := time.Since(start)

	enc := json.NewEncoder(os.Stdout)
	if *perRequest {
		for _, r := range results {
			enc.Encode(r)
		}
	}
	sum := summarize(*mode, *seed, results, wall)
	addSchedulerStats(&sum, client, base)
	enc.Encode(sum)
}

// addSchedulerStats folds the server's /statz scheduler view into the
// summary, so every load run reports slot utilization and wait alongside
// its latency percentiles. Best-effort: a server without /statz just
// leaves the fields zero.
func addSchedulerStats(s *summary, client *http.Client, base string) {
	resp, err := client.Get(base + "/statz")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var st serve.Stats
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&st) != nil {
		return
	}
	s.SlotCap = st.Scheduler.Capacity
	s.SlotPeak = st.Scheduler.Peak
	s.SlotGrants = st.Scheduler.Grants
	s.SlotWaitCount = st.SlotWaitCount
	s.SlotWaitMeanMs = st.SlotWaitMeanMs
	s.NodesAlive = st.NodesAlive
	if st.Chaos != nil {
		s.ChaosKills = st.Chaos.Kills
		s.ChaosRestarts = st.Chaos.Restarts
		s.ChaosBytesReplicated = st.Chaos.BytesReReplicated
		s.ChaosCrashedAttempts = st.Chaos.CrashedAttempts
		s.ChaosFetchErrs = st.Chaos.FetchErrorsInjected
	}
}

// summarize folds per-request results into the JSONL summary line.
func summarize(mode string, seed int64, results []result, wall time.Duration) summary {
	s := summary{Kind: "summary", Mode: mode, Seed: seed, Requests: len(results),
		Statuses: map[string]int{}, WallSec: wall.Seconds()}
	var lat []float64
	var sum float64
	for _, r := range results {
		if r.Err != "" {
			s.Statuses["error"]++
			continue
		}
		s.Statuses[fmt.Sprintf("%d", r.Status)]++
		if r.Status == http.StatusOK {
			s.OK++
			lat = append(lat, r.Millis)
			sum += r.Millis
			switch r.Source {
			case "cache":
				s.CacheHits++
			case "dedup":
				s.DedupHits++
			}
		}
	}
	if wall > 0 {
		s.Throughput = float64(s.OK) / wall.Seconds()
	}
	if len(results) > 0 {
		s.ErrorRate = float64(len(results)-s.OK) / float64(len(results))
	}
	if len(lat) > 0 {
		sort.Float64s(lat)
		s.MeanMs = sum / float64(len(lat))
		s.P50Ms = percentile(lat, 0.50)
		s.P95Ms = percentile(lat, 0.95)
		s.P99Ms = percentile(lat, 0.99)
	}
	return s
}

// percentile reads the p-quantile from sorted latencies (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// selfServe starts an in-process matserve on a loopback port and returns
// its base URL plus a shutdown function. chaosKill > 0 runs the server's
// cluster under a seeded fault schedule: that many datanodes crash while
// the load runs (and are later revived, so capacity recovers), proving the
// serving path absorbs node loss without failing requests.
func selfServe(concurrency, queue, chaosKill int, chaosSeed int64) (string, func()) {
	opts := core.DefaultOptions(8)
	opts.NB = 64
	cfg := serve.Config{
		Concurrency: concurrency,
		QueueDepth:  queue,
		CacheBytes:  64 << 20,
		Opts:        opts,
	}
	if chaosKill > 0 {
		plan := chaos.RandomPlan(chaosSeed, chaos.PlanConfig{
			Nodes:   opts.Nodes,
			Kills:   chaosKill,
			Horizon: 64,
			Restart: true,
		})
		cfg.Chaos = &plan
	}
	srv, err := serve.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: serve.NewHandler(srv)}
	go hs.Serve(ln)
	stop := func() {
		srv.Close()
		hs.Close()
	}
	return "http://" + ln.Addr().String(), stop
}
