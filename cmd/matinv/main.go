// matinv inverts a matrix file through the MapReduce pipeline, printing
// the run report and the Section 7.2 residual check.
//
//	matinv -in a.bin -out inv.bin -nodes 8 -nb 128
//	matinv -in a.txt -engine local        # single-node Algorithm 1
//	matinv -in a.bin -engine scalapack    # the MPI baseline
//
// Disable individual Section 6 optimizations with -no-separate-files,
// -no-block-wrap, -no-transpose-u.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"sort"
	"strings"

	mrinverse "repro"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/scalapack"
)

// printLayout renders the Figure 4 HDFS tree: directories with file
// counts and sizes.
func printLayout(p *core.Pipeline) {
	dirs := map[string]struct {
		files int
		bytes int64
	}{}
	for _, path := range p.FS.List("") {
		dir := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			dir = path[:i]
		}
		sz, _ := p.FS.Size(path)
		e := dirs[dir]
		e.files++
		e.bytes += sz
		dirs[dir] = e
	}
	names := make([]string, 0, len(dirs))
	for d := range dirs {
		names = append(names, d)
	}
	sort.Strings(names)
	fmt.Println("HDFS layout (Figure 4):")
	for _, d := range names {
		e := dirs[d]
		depth := strings.Count(d, "/")
		fmt.Printf("  %s%-*s %3d files %10d bytes\n", strings.Repeat("  ", depth), 30-2*depth, d, e.files, e.bytes)
	}
}

func main() {
	in := flag.String("in", "", "input matrix file (.txt = text format)")
	out := flag.String("out", "", "optional output file for the inverse")
	engine := flag.String("engine", "mapreduce", "mapreduce | local | scalapack | scalapack2d | spark | auto")
	nodes := flag.Int("nodes", 8, "simulated cluster nodes (m0) / MPI ranks")
	nb := flag.Int("nb", 512, "bound value for the MapReduce pipeline")
	blockSize := flag.Int("block", 128, "ScaLAPACK distribution block size")
	noSep := flag.Bool("no-separate-files", false, "disable the Section 6.1 optimization")
	noWrap := flag.Bool("no-block-wrap", false, "disable the Section 6.2 optimization")
	noTrans := flag.Bool("no-transpose-u", false, "disable the Section 6.3 optimization")
	stream := flag.Bool("stream", false, "stream factors in row bands during inversion (bounded task memory)")
	multiply := flag.String("multiply", "", "multiply strategy: single-round | replicated | space-round | auto (empty = single-round)")
	rho := flag.Int("rho", 0, "replication / round parameter for the multi-round strategies (0 derives it)")
	mulMem := flag.Int64("multiply-memory", 0, "per-reducer byte budget for the space-round strategy (0 = uncapped)")
	showLayout := flag.Bool("show-layout", false, "print the Figure 4 HDFS directory tree after a mapreduce run")
	showJobs := flag.Bool("show-jobs", false, "print the per-job breakdown after a mapreduce run")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file of the run (view in chrome://tracing or ui.perfetto.dev)")
	showMetrics := flag.Bool("metrics", false, "print the metrics registry after the run")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "usage: matinv -in <matrix file> [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	a, err := mrinverse.ReadMatrixFile(*in)
	if err != nil {
		log.Fatalf("read %s: %v", *in, err)
	}
	fmt.Printf("read %dx%d matrix from %s\n", a.Rows, a.Cols, *in)

	var tracer *obs.Tracer
	var metrics *obs.Registry
	if *traceOut != "" {
		tracer = obs.New()
	}
	if *showMetrics {
		metrics = obs.NewRegistry()
	}

	var inv *matrix.Dense
	start := time.Now()
	switch *engine {
	case "mapreduce":
		opts := mrinverse.DefaultOptions(*nodes)
		opts.NB = *nb
		opts.SeparateFiles = !*noSep
		opts.BlockWrap = !*noWrap
		opts.TransposeU = !*noTrans
		opts.StreamingInversion = *stream
		opts.MultiplyRho = *rho
		opts.MultiplyMemory = *mulMem
		if *multiply == "auto" {
			choice := costmodel.ChooseMultiply(costmodel.NewCluster(costmodel.Medium, opts.Nodes),
				a.Rows, a.Cols, a.Rows, float64(*mulMem))
			choice.Apply(&opts)
			opts.MultiplyMemory = *mulMem
			fmt.Printf("multiply auto selected %s (rho %d): %s\n", choice.Strategy, choice.Rho, choice.Reason)
		} else {
			opts.Multiply = core.MultiplyStrategy(*multiply)
		}
		p, perr := core.NewPipeline(opts)
		if perr != nil {
			log.Fatal(perr)
		}
		p.Tracer = tracer
		p.Metrics = metrics
		var rep *mrinverse.Report
		inv, rep, err = p.Invert(a)
		if err == nil {
			fmt.Printf("pipeline: %d jobs (depth %d), %d map / %d reduce tasks, grid %dx%d\n",
				rep.JobsRun, rep.Depth, rep.MapTasks, rep.ReduceTasks, rep.F1, rep.F2)
			fmt.Printf("HDFS: wrote %d bytes, read %d bytes, %d files\n",
				rep.FS.BytesWritten, rep.FS.BytesRead, rep.FS.FilesCreated)
			if *showJobs {
				for _, j := range rep.Jobs {
					fmt.Printf("  job %-24s map=%-3d reduce=%-3d failures=%d\n",
						j.Name, j.MapTasks, j.ReduceTasks, j.Failures)
				}
			}
			if *showLayout {
				printLayout(p)
			}
		}
	case "local":
		inv, err = mrinverse.InvertLocal(a)
	case "scalapack2d":
		var st *scalapack.Stats
		inv, st, err = scalapack.Invert2D(a, scalapack.Grid2D{Procs: *nodes, BlockSize: *blockSize, Tracer: tracer, Metrics: metrics})
		if err == nil {
			fmt.Printf("MPI 2-D grid: %d messages, %d bytes transferred\n", st.Messages, st.BytesTransferred)
		}
	case "spark":
		inv, err = mrinverse.InvertSpark(a, *nodes, *nb)
		if err == nil {
			fmt.Println("spark engine: intermediates cached in memory, lineage fault tolerance")
		}
	case "auto":
		var choice mrinverse.EngineChoice
		inv, choice, err = mrinverse.AutoInvert(a, mrinverse.ClusterSpec{Nodes: *nodes}, *nb)
		if err == nil {
			fmt.Printf("auto selected %s: %s\n", choice.Engine, choice.Reason)
		}
	case "scalapack":
		var st *mrinverse.ScaLAPACKStats
		inv, st, err = mrinverse.InvertScaLAPACK(a, mrinverse.ScaLAPACKConfig{Procs: *nodes, BlockSize: *blockSize, Tracer: tracer, Metrics: metrics})
		if err == nil {
			fmt.Printf("MPI: %d messages, %d bytes transferred, %d panel broadcasts\n",
				st.Messages, st.BytesTransferred, st.PanelBroadcasts)
		}
	default:
		log.Fatalf("unknown engine %q", *engine)
	}
	if err != nil {
		log.Fatalf("invert: %v", err)
	}
	fmt.Printf("inverted in %v; residual max|I-AA⁻¹| = %.3g\n",
		time.Since(start).Round(time.Millisecond), mrinverse.Residual(a, inv))

	if tracer != nil {
		spans := tracer.Snapshot()
		f, ferr := os.Create(*traceOut)
		if ferr != nil {
			log.Fatalf("create %s: %v", *traceOut, ferr)
		}
		if werr := obs.WriteChromeTrace(f, spans); werr != nil {
			log.Fatalf("write trace: %v", werr)
		}
		if cerr := f.Close(); cerr != nil {
			log.Fatalf("close %s: %v", *traceOut, cerr)
		}
		fmt.Printf("wrote %d spans to %s (open in chrome://tracing or ui.perfetto.dev)\n", len(spans), *traceOut)
		if root := obs.Root(spans); root != nil {
			if cp, cerr := obs.ComputeCriticalPath(spans, root.ID); cerr == nil {
				fmt.Print(cp.String())
			}
		}
	}
	if metrics != nil {
		fmt.Print(metrics.String())
	}

	if *out != "" {
		if err := mrinverse.WriteMatrixFile(*out, inv); err != nil {
			log.Fatalf("write %s: %v", *out, err)
		}
		fmt.Printf("wrote inverse to %s\n", *out)
	}
}
