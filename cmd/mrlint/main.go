// mrlint is the repository's invariant multichecker: it runs the
// internal/analysis suite (determinism, ctxflow, boundedalloc,
// obsnames, lockscope) over the packages matching its arguments, and
// optionally a selected set of standard vet passes alongside.
//
// Usage:
//
//	mrlint [-vet] [-list] [packages...]
//
// Exit status is 1 if any diagnostic is reported. Findings are
// silenced in place with
//
//	//mrlint:allow <rule>[(<detail>)] -- <reason>
//
// on the offending line, the line above, or (package-wide) in the
// package doc comment; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"os/exec"

	"repro/internal/analysis"
)

func main() {
	vet := flag.Bool("vet", false, "also run selected go vet passes (copylocks, lostcancel, atomic, printf)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mrlint [-vet] [-list] [packages...]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset := token.NewFileSet()
	pkgs, err := analysis.LoadPatterns(fset, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrlint: %v\n", err)
		os.Exit(2)
	}

	failed := false
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analysis.All())
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrlint: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			failed = true
			pos := fset.Position(d.Pos)
			fmt.Printf("%s: %s: %s\n", pos, d.Rule, d.Message)
		}
	}

	if *vet {
		// The selected vet passes complement the custom analyzers:
		// copylocks and atomic back up lockscope/determinism,
		// lostcancel backs up ctxflow. Explicitly enabling passes
		// makes go vet run only those.
		args := append([]string{"vet", "-copylocks", "-lostcancel", "-atomic", "-printf"}, patterns...)
		cmd := exec.Command("go", args...)
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	if failed {
		os.Exit(1)
	}
}
