package mrinverse

import (
	"testing"
)

func TestInvertSpark(t *testing.T) {
	a := Random(72, 21)
	inv, err := InvertSpark(a, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a, inv); r > 1e-7 {
		t.Fatalf("residual %g", r)
	}
	// Agrees with the MapReduce engine.
	opts := DefaultOptions(4)
	opts.NB = 16
	mr, _, err := Invert(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mr.Data {
		if d := mr.Data[i] - inv.Data[i]; d > 1e-8 || d < -1e-8 {
			t.Fatalf("spark and mapreduce disagree at %d", i)
		}
	}
}

func TestInvertSparkDefaults(t *testing.T) {
	a := DiagonallyDominant(20, 22)
	inv, err := InvertSpark(a, 0, 0) // degenerate params normalized
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a, inv); r > 1e-9 {
		t.Fatalf("residual %g", r)
	}
}

func TestAutoInvertSmallPicksLocal(t *testing.T) {
	a := Random(64, 23)
	inv, choice, err := AutoInvert(a, ClusterSpec{Nodes: 16}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if choice.Engine != "local" {
		t.Fatalf("chose %s: %s", choice.Engine, choice.Reason)
	}
	if r := Residual(a, inv); r > 1e-8 {
		t.Fatalf("residual %g", r)
	}
}

func TestAutoInvertExecutesEveryEngine(t *testing.T) {
	// Force each branch by matrix order (the model decides on order, the
	// execution runs at this machine's scale on the same matrix).
	a := Random(48, 24)

	// local: small order.
	if _, c, err := AutoInvert(a, ClusterSpec{Nodes: 8}, 0); err != nil || c.Engine != "local" {
		t.Fatalf("local branch: %v / %+v", err, c)
	}

	// The other branches are exercised through the chooser directly in
	// internal/costmodel tests; here verify the reason strings surface.
	_, c, err := AutoInvert(a, ClusterSpec{Nodes: 8, Large: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Reason == "" {
		t.Fatal("no reason reported")
	}
}
