package mrinverse

import (
	"math"
	"path/filepath"
	"testing"
)

func TestInvertPublicAPI(t *testing.T) {
	a := Random(64, 1)
	opts := DefaultOptions(4)
	opts.NB = 16
	inv, rep, err := Invert(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a, inv); r > 1e-7 {
		t.Fatalf("residual %g", r)
	}
	if rep.JobsRun != PipelineJobs(64, 16) {
		t.Fatalf("jobs = %d, want %d", rep.JobsRun, PipelineJobs(64, 16))
	}
}

func TestThreeInvertersAgree(t *testing.T) {
	a := Random(48, 2)
	opts := DefaultOptions(4)
	opts.NB = 16
	mr, _, err := Invert(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	local, err := InvertLocal(a)
	if err != nil {
		t.Fatal(err)
	}
	scal, _, err := InvertScaLAPACK(a, ScaLAPACKConfig{Procs: 4, BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range mr.Data {
		if math.Abs(mr.Data[i]-local.Data[i]) > 1e-7 || math.Abs(scal.Data[i]-local.Data[i]) > 1e-7 {
			t.Fatalf("inverters disagree at %d: %v %v %v", i, mr.Data[i], local.Data[i], scal.Data[i])
		}
	}
}

func TestDecomposePublicAPI(t *testing.T) {
	a := Random(40, 3)
	opts := DefaultOptions(4)
	opts.NB = 10
	p, l, u, err := Decompose(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Spot check PA = LU at a few entries via full reconstruction.
	n := 40
	for i := 0; i < n; i += 7 {
		for j := 0; j < n; j += 5 {
			var s float64
			for k := 0; k <= i && k < n; k++ {
				s += l.At(i, k) * u.At(k, j)
			}
			if math.Abs(s-a.At(p[i], j)) > 1e-8 {
				t.Fatalf("(LU)[%d][%d] = %v, (PA) = %v", i, j, s, a.At(p[i], j))
			}
		}
	}
}

func TestSolve(t *testing.T) {
	n := 32
	a := DiagonallyDominant(n, 4)
	want := make([]float64, n)
	for i := range want {
		want[i] = float64(i%5) - 2
	}
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b[i] += a.At(i, j) * want[j]
		}
	}
	opts := DefaultOptions(2)
	opts.NB = 8
	x, err := Solve(a, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-7 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	if _, err := Solve(a, b[:3], opts); err == nil {
		t.Fatal("short rhs accepted")
	}
}

func TestSolveDirectAndMultiply(t *testing.T) {
	n, k := 40, 3
	a := Random(n, 71)
	x := NewMatrix(n, k)
	for i := range x.Data {
		x.Data[i] = float64(i%7) - 3
	}
	opts := DefaultOptions(4)
	opts.NB = 12

	b, err := Multiply(a, x, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveDirect(a, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x.Data {
		if d := got.Data[i] - x.Data[i]; d > 1e-8 || d < -1e-8 {
			t.Fatalf("round-trip Multiply+SolveDirect differs at %d by %g", i, d)
		}
	}
}

func TestResidualInfiniteOnShapeMismatch(t *testing.T) {
	if r := Residual(NewMatrix(2, 2), NewMatrix(3, 3)); !math.IsInf(r, 1) {
		t.Fatalf("residual = %v", r)
	}
}

func TestMatrixFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := Random(9, 5)
	for _, name := range []string{"a.txt", "a.bin", "a.mtx"} {
		path := filepath.Join(dir, name)
		if err := WriteMatrixFile(path, m); err != nil {
			t.Fatal(err)
		}
		got, err := ReadMatrixFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i := range m.Data {
			if got.Data[i] != m.Data[i] {
				t.Fatalf("%s: round-trip mismatch", name)
			}
		}
	}
	if _, err := ReadMatrixFile(filepath.Join(dir, "missing.bin")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestConstructors(t *testing.T) {
	if m := NewMatrix(2, 3); m.Rows != 2 || m.Cols != 3 {
		t.Fatal("NewMatrix wrong")
	}
	if m := FromRows([][]float64{{1, 2}}); m.At(0, 1) != 2 {
		t.Fatal("FromRows wrong")
	}
	if id := Identity(3); id.At(1, 1) != 1 || id.At(0, 1) != 0 {
		t.Fatal("Identity wrong")
	}
}
